"""Health evaluation: a rule engine over telemetry snapshots.

Auditing (``repro.telemetry.audit``) produces raw signals -- observed
error, the live theoretical bound, violation counters, the sampling
probability, daemon backlog.  This module condenses them into a single
operator-facing answer: **is the deployment healthy?**

A :class:`HealthRule` inspects one metric snapshot (the JSON-able dict
from :func:`repro.telemetry.exposition.snapshot`) and returns a
:class:`RuleResult` with status ``ok`` / ``warn`` / ``fail`` and a
human-readable detail line.  :class:`HealthEvaluator` runs a rule set,
aggregates the worst status, exports per-rule ``health_status`` gauges
(0 = ok, 1 = warn, 2 = fail), and emits a ``health.transition`` event
whenever the overall status changes.  The ``/health`` route of
:class:`~repro.telemetry.TelemetryServer` serves the result as JSON
(HTTP 200 for ok/warn, 503 for fail) so any load balancer or alertman
can watch a live run.

The default rule set covers the failure modes the paper's operational
story makes possible:

* ``error_slo`` -- observed mean relative error above the SLO;
* ``guarantee`` -- a Theorem 1/2/5 bound violation was recorded, or the
  error/bound ratio is drifting toward one;
* ``p_floor`` -- AlwaysLineRate pinned the sampling probability at the
  bottom of the ladder (the switch is overloaded, accuracy is at its
  configured floor);
* ``convergence`` -- AlwaysCorrect keeps evaluating its threshold test
  without ever crossing (the stream is too small or too uniform for the
  configured epsilon);
* ``queue_depth`` -- the measurement daemon's ingest queue is backing
  up (separate-thread integration falling behind the switch);
* ``checkpoint_staleness`` -- a checkpointing daemon has gone too long
  without a successful checkpoint, or restores are hitting corrupt
  files (crash-safety margin eroding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.telemetry.exposition import snapshot as snapshot_of

#: Status ordering for aggregation (larger is worse).
_SEVERITY = {"ok": 0, "warn": 1, "fail": 2}


def sample_value(
    snap: Dict, metric: str, labels: Optional[Dict[str, str]] = None
) -> Optional[float]:
    """The value of one gauge/counter sample in a snapshot, or ``None``.

    ``labels`` filters by subset match (the sample must carry at least
    the given label pairs); with multiple matches the values are summed,
    which is the natural reading for counters split by label.
    """
    family = snap.get("metrics", {}).get(metric)
    if family is None:
        return None
    wanted = labels or {}
    total = 0.0
    matched = False
    for sample in family.get("samples", ()):
        sample_labels = sample.get("labels", {})
        if all(sample_labels.get(k) == v for k, v in wanted.items()):
            value = sample.get("value")
            if isinstance(value, str):  # non-finite encoded for JSON
                value = float(value.replace("+Inf", "inf").replace("-Inf", "-inf"))
            if value is None:  # histogram sample; not a scalar
                continue
            total += float(value)
            matched = True
    return total if matched else None


@dataclass
class RuleResult:
    """One rule's verdict."""

    name: str
    status: str
    detail: str
    value: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
        }
        if self.value is not None:
            payload["value"] = self.value
        return payload


class HealthRule:
    """Base class: evaluate one snapshot into a :class:`RuleResult`."""

    name = "rule"

    def evaluate(self, snap: Dict) -> RuleResult:  # pragma: no cover - abstract
        raise NotImplementedError

    def _ok(self, detail: str, value: Optional[float] = None) -> RuleResult:
        return RuleResult(self.name, "ok", detail, value)

    def _warn(self, detail: str, value: Optional[float] = None) -> RuleResult:
        return RuleResult(self.name, "warn", detail, value)

    def _fail(self, detail: str, value: Optional[float] = None) -> RuleResult:
        return RuleResult(self.name, "fail", detail, value)


class ErrorSLORule(HealthRule):
    """Observed mean relative error must stay under the SLO."""

    name = "error_slo"

    def __init__(self, slo: float = 0.05, component: str = "audit") -> None:
        if slo <= 0:
            raise ValueError("slo must be positive, got %r" % (slo,))
        self.slo = slo
        self.component = component

    def evaluate(self, snap: Dict) -> RuleResult:
        observed = sample_value(
            snap,
            "audit_relative_error",
            {"component": self.component, "stat": "mean"},
        )
        if observed is None:
            return self._ok("no audit samples yet")
        if observed > self.slo:
            return self._fail(
                "mean relative error %.4f exceeds SLO %.4f" % (observed, self.slo),
                observed,
            )
        return self._ok(
            "mean relative error %.4f within SLO %.4f" % (observed, self.slo), observed
        )


class GuaranteeRule(HealthRule):
    """No Theorem 1/2/5 violations; warn when the ratio nears the bound."""

    name = "guarantee"

    def __init__(self, warn_ratio: float = 0.8, component: str = "audit") -> None:
        self.warn_ratio = warn_ratio
        self.component = component

    def evaluate(self, snap: Dict) -> RuleResult:
        violations = sample_value(
            snap, "audit_guarantee_violations", {"component": self.component}
        )
        if violations is None:
            return self._ok("no guarantee checks yet")
        if violations > 0:
            return self._fail(
                "%d guarantee violation(s) recorded" % int(violations), violations
            )
        ratio = sample_value(
            snap, "audit_bound_ratio", {"component": self.component}
        )
        if ratio is not None and ratio > self.warn_ratio:
            return self._warn(
                "error at %.0f%% of the theoretical bound" % (100 * ratio), ratio
            )
        return self._ok(
            "observed error within bound"
            + ("" if ratio is None else " (ratio %.3f)" % ratio),
            ratio,
        )


class ProbabilityFloorRule(HealthRule):
    """Warn when adaptive sampling is pinned at the ladder's bottom rung."""

    name = "p_floor"

    def __init__(self, floor: Optional[float] = None) -> None:
        if floor is None:
            from repro.core.config import P_MIN

            floor = P_MIN
        self.floor = floor

    def evaluate(self, snap: Dict) -> RuleResult:
        probability = sample_value(snap, "nitro_sampling_probability")
        if probability is None:
            return self._ok("no sampling-probability gauge")
        if probability <= self.floor:
            return self._warn(
                "p=%.6g pinned at the ladder floor (overload)" % probability,
                probability,
            )
        return self._ok("p=%.6g above the floor" % probability, probability)


class ConvergenceRule(HealthRule):
    """Warn when AlwaysCorrect keeps checking but never converges."""

    name = "convergence"

    def __init__(self, stall_checks: int = 50) -> None:
        if stall_checks < 1:
            raise ValueError("stall_checks must be >= 1")
        self.stall_checks = stall_checks

    def evaluate(self, snap: Dict) -> RuleResult:
        checks = sample_value(snap, "nitro_convergence_checks_total")
        if checks is None:
            return self._ok("not an AlwaysCorrect run")
        crossings = sample_value(snap, "nitro_convergence_total") or 0.0
        if crossings > 0:
            return self._ok("converged after %d check(s)" % int(checks), checks)
        if checks >= self.stall_checks:
            return self._warn(
                "%d convergence checks without crossing T (stalled?)" % int(checks),
                checks,
            )
        return self._ok("warming up (%d checks so far)" % int(checks), checks)


class QueueDepthRule(HealthRule):
    """The measurement daemon's ingest queue must not back up."""

    name = "queue_depth"

    def __init__(self, warn_depth: int = 16, fail_depth: int = 64) -> None:
        if not 0 < warn_depth <= fail_depth:
            raise ValueError("need 0 < warn_depth <= fail_depth")
        self.warn_depth = warn_depth
        self.fail_depth = fail_depth

    def evaluate(self, snap: Dict) -> RuleResult:
        depth = sample_value(snap, "daemon_queue_depth")
        if depth is None:
            return self._ok("no queued daemon")
        if depth >= self.fail_depth:
            return self._fail("queue depth %d (falling behind)" % int(depth), depth)
        if depth >= self.warn_depth:
            return self._warn("queue depth %d" % int(depth), depth)
        return self._ok("queue depth %d" % int(depth), depth)


class QueueSaturationRule(HealthRule):
    """The service must not be shedding ingest under backpressure.

    Watches the service-wide drop accounting: batches rejected by tenant
    queues (``daemon_batches_dropped_total`` summed over daemons, plus
    the wire-side ``service_dropped_batches_total``).  Any drop warns --
    drops are *legal* under the ``overflow="drop"`` policy but always
    mean a consumer fell behind its producers; a drop fraction above
    ``fail_fraction`` of accepted batches fails.
    """

    name = "queue_saturation"

    def __init__(self, fail_fraction: float = 0.25) -> None:
        if not 0 < fail_fraction <= 1:
            raise ValueError("fail_fraction must be in (0, 1]")
        self.fail_fraction = fail_fraction

    def evaluate(self, snap: Dict) -> RuleResult:
        dropped = sample_value(snap, "daemon_batches_dropped_total") or 0.0
        wire_dropped = sample_value(snap, "service_dropped_batches_total") or 0.0
        dropped = max(dropped, wire_dropped)
        if dropped <= 0:
            return self._ok("no dropped batches", 0.0)
        accepted = sample_value(snap, "service_ingest_batches_total")
        if accepted is None:
            accepted = sample_value(snap, "daemon_batches_total") or 0.0
        total = accepted + dropped
        fraction = dropped / total if total > 0 else 1.0
        if fraction >= self.fail_fraction:
            return self._fail(
                "dropping %.0f%% of offered batches" % (fraction * 100), fraction
            )
        return self._warn(
            "%d batches dropped (%.1f%%)" % (int(dropped), fraction * 100), fraction
        )


class CheckpointStalenessRule(HealthRule):
    """A checkpointing deployment must keep its checkpoints fresh.

    Watches ``daemon_checkpoint_age_batches`` (distance, in ingested
    batches, to the last successful checkpoint) and the restore-failure
    counter: a stale checkpoint widens the window of state a crash
    loses, and restore failures mean rotations are burning down.
    """

    name = "checkpoint_staleness"

    def __init__(self, warn_age: int = 64, fail_age: int = 256) -> None:
        if not 0 < warn_age <= fail_age:
            raise ValueError("need 0 < warn_age <= fail_age")
        self.warn_age = warn_age
        self.fail_age = fail_age

    def evaluate(self, snap: Dict) -> RuleResult:
        age = sample_value(snap, "daemon_checkpoint_age_batches")
        if age is None:
            age = sample_value(snap, "control_checkpoint_age_epochs")
        failures = sample_value(snap, "checkpoint_restore_failures_total")
        if age is None and failures is None:
            return self._ok("checkpointing not enabled")
        if failures:
            return self._warn(
                "%d checkpoint(s) failed validation on restore" % int(failures),
                failures,
            )
        if age is None:
            return self._ok("no checkpoint age gauge yet")
        if age >= self.fail_age:
            return self._fail(
                "last checkpoint %d batch(es) ago (stale)" % int(age), age
            )
        if age >= self.warn_age:
            return self._warn("last checkpoint %d batch(es) ago" % int(age), age)
        return self._ok("last checkpoint %d batch(es) ago" % int(age), age)


def default_rules(
    error_slo: float = 0.05, component: str = "audit"
) -> List[HealthRule]:
    """The standard rule set (see module docstring)."""
    return [
        ErrorSLORule(slo=error_slo, component=component),
        GuaranteeRule(component=component),
        ProbabilityFloorRule(),
        ConvergenceRule(),
        QueueDepthRule(),
        CheckpointStalenessRule(),
    ]


@dataclass
class HealthReport:
    """The aggregated verdict of one evaluation."""

    status: str
    results: List[RuleResult]
    evaluations: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "evaluations": self.evaluations,
            "rules": [result.as_dict() for result in self.results],
        }


class HealthEvaluator:
    """Runs a rule set over a telemetry object's live snapshot.

    Exports per-rule and overall ``health_status`` gauges
    (0 = ok, 1 = warn, 2 = fail) back into the same registry and traces
    ``health.transition`` events when the overall status changes, so the
    health history is itself observable.

    Pass an :class:`~repro.telemetry.alerts.AlertManager` as ``alerts``
    to unify the two planes: every evaluation mirrors the rule results
    into ``health_<rule>`` alerts (fail = firing, warn = pending,
    ok = inactive/resolved), so the ``/health`` route's 503 and a firing
    alert can never disagree about the same condition.
    """

    def __init__(
        self,
        telemetry,
        rules: Optional[Sequence[HealthRule]] = None,
        alerts=None,
    ) -> None:
        self.telemetry = telemetry
        self.rules = list(rules) if rules is not None else default_rules()
        if not self.rules:
            raise ValueError("at least one health rule required")
        self.alerts = alerts
        self.evaluations = 0
        self.last_status: Optional[str] = None

    def evaluate(self) -> HealthReport:
        """Evaluate every rule against a fresh snapshot."""
        self.evaluations += 1
        snap = snapshot_of(self.telemetry.registry)
        results = [rule.evaluate(snap) for rule in self.rules]
        status = "ok"
        for result in results:
            if _SEVERITY[result.status] > _SEVERITY[status]:
                status = result.status
        for result in results:
            self.telemetry.gauge(
                "health_status", _SEVERITY[result.status], rule=result.name
            )
        self.telemetry.gauge("health_status", _SEVERITY[status], rule="overall")
        if status != self.last_status:
            self.telemetry.event(
                "health.transition",
                previous=self.last_status,
                status=status,
                failing=[r.name for r in results if r.status != "ok"],
            )
            self.last_status = status
        if self.alerts is not None:
            self.alerts.observe_health(results)
        return HealthReport(status=status, results=results, evaluations=self.evaluations)
