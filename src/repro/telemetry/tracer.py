"""Structured event tracing with a bounded ring buffer.

Metrics answer "how much"; the tracer answers "what happened, and in
what order".  It records :class:`TraceEvent` objects -- a sequence
number, a timestamp, a dotted event name and a flat field dict -- into a
``collections.deque`` ring so a long-running daemon can never grow its
trace without bound.  The events this repository emits are the ones the
paper's operational story turns on:

* ``nitro.p_change`` -- the sampling probability moved (either adaptive
  mode, or a reset);
* ``nitro.convergence`` -- AlwaysCorrect's ``median_i sum_y C[i,y]^2 > T``
  test crossed, with the packet index where it happened;
* ``nitro.epoch`` -- an AlwaysLineRate 100 ms rate-measurement epoch
  rolled over;
* ``control.epoch`` / ``control.task`` -- the control plane evaluated an
  epoch / one measurement task;
* ``simulate.run`` -- a switch-simulator run completed.

Export is JSON Lines (one event per line, sorted keys) so traces diff
cleanly and round-trip exactly -- :func:`read_jsonl` restores what
:meth:`Tracer.to_jsonl` wrote.
"""

from __future__ import annotations

import io
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional


@dataclass
class TraceEvent:
    """One structured event.

    ``time`` is the ordering timestamp (monotonic by default, immune to
    wall-clock steps); ``wall`` is the wall-clock instant, so exported
    JSONL lines can be correlated with logs and other hosts.
    """

    seq: int
    time: float
    name: str
    fields: Dict[str, object] = field(default_factory=dict)
    wall: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "time": self.time,
            "wall": self.wall,
            "name": self.name,
            "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        return cls(
            seq=int(data["seq"]),
            time=float(data["time"]),
            name=str(data["name"]),
            fields=dict(data.get("fields", {})),
            # Traces written before the wall field existed fall back to
            # the primary timestamp, keeping old JSONL files loadable.
            wall=float(data.get("wall", data["time"])),
        )


class Tracer:
    """Bounded in-memory event recorder.

    Parameters
    ----------
    capacity:
        Ring size; once full, the oldest events are evicted (the
        ``dropped`` property tells how many were lost).
    clock:
        Primary timestamp source, injectable for deterministic
        golden-file tests.  Defaults to monotonic ``time.monotonic``.
    wall_clock:
        Wall-clock source for the ``wall`` field.  Defaults to
        ``time.time``; when a custom ``clock`` is injected without a
        ``wall_clock``, events mirror the primary timestamp so golden
        traces stay deterministic.
    """

    def __init__(
        self,
        capacity: int = 4096,
        clock: Optional[Callable[[], float]] = None,
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        self.capacity = capacity
        self._clock = time.monotonic if clock is None else clock
        if wall_clock is not None:
            self._wall_clock: Optional[Callable[[], float]] = wall_clock
        elif clock is None:
            self._wall_clock = time.time
        else:
            self._wall_clock = None  # mirror the injected clock
        self._ring: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, name: str, **fields) -> TraceEvent:
        """Append one event to the ring and return it."""
        now = self._clock()
        wall = self._wall_clock() if self._wall_clock is not None else now
        event = TraceEvent(
            seq=self._recorded, time=now, name=name, fields=fields, wall=wall
        )
        self._recorded += 1
        self._ring.append(event)
        return event

    @property
    def recorded(self) -> int:
        """Events recorded since creation (including evicted ones)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self._recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def events(self, name: Optional[str] = None) -> List[TraceEvent]:
        """Buffered events in order, optionally filtered by exact name."""
        if name is None:
            return list(self._ring)
        return [event for event in self._ring if event.name == name]

    def clear(self) -> None:
        self._ring.clear()
        self._recorded = 0

    # -- JSONL round trip ---------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialise the buffered events, one JSON object per line."""
        out = io.StringIO()
        for event in self._ring:
            out.write(json.dumps(event.as_dict(), sort_keys=True))
            out.write("\n")
        return out.getvalue()

    def write_jsonl(self, path: str) -> int:
        """Write the buffer to ``path``; returns the number of events."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return len(self._ring)


def parse_jsonl(text: str) -> List[TraceEvent]:
    """Parse events from JSONL text (inverse of :meth:`Tracer.to_jsonl`)."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a JSONL trace file written by :meth:`Tracer.write_jsonl`."""
    with open(path) as handle:
        return parse_jsonl(handle.read())
