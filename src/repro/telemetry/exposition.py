"""Exposition: Prometheus text format, JSON snapshots, HTTP endpoint.

Three ways out of the registry/tracer:

* :func:`render_prometheus` -- the Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one sample per line,
  histograms as cumulative ``_bucket{le=...}`` series plus ``_sum`` and
  ``_count``.
* :func:`snapshot` -- a JSON-able dict of every family, sample and the
  tracer's ring state; :func:`render_json` serialises it.
* :class:`TelemetryServer` / :func:`start_http_server` -- a stdlib
  ``http.server`` endpoint run in a daemon thread, serving ``/metrics``
  (Prometheus), ``/snapshot`` (JSON), ``/trace`` (event JSONL),
  ``/spans`` (span JSONL), ``/history`` (the attached
  :class:`~repro.telemetry.history.HistoryStore` as JSON, filterable
  with ``?metric=name``), ``/alerts`` + ``/rules`` (when an
  :class:`~repro.telemetry.alerts.AlertManager` is attached) and --
  when a :class:`~repro.telemetry.health.HealthEvaluator` is attached
  -- ``/health`` (rule-by-rule status JSON, 503 on failure).  No
  third-party dependency: the point is that any Prometheus scraper or
  ``curl`` can watch a live run.

Non-finite samples are legal (``relative_error`` returns ``inf`` when
truth is zero): the text format renders them as ``+Inf`` / ``-Inf`` /
``NaN`` per the exposition spec, and JSON snapshots encode them as
those strings since bare ``Infinity`` tokens are not valid JSON.
"""

from __future__ import annotations

import json
import math
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracer import Tracer

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    """Prometheus sample-value formatting (integers without the .0)."""
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _escape_help(text: str) -> str:
    """HELP-line escaping per the text-format spec: ``\\`` and newline."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        '%s="%s"' % (name, _escape_label_value(str(value)))
        for name, value in merged.items()
    )
    return "{%s}" % body


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in the registry as Prometheus exposition text.

    The whole render happens under the registry lock so a scrape during
    live ingest sees a consistent point-in-time view -- sibling metrics
    updated inside one :meth:`~repro.telemetry.Telemetry.atomic` block
    are observed all-or-nothing, and family/child dicts cannot change
    size mid-iteration.
    """
    with registry.lock:
        return _render_prometheus_locked(registry)


def _render_prometheus_locked(registry: MetricsRegistry) -> str:
    lines = []
    for family in registry:
        lines.append("# HELP %s %s" % (family.name, _escape_help(family.help or family.name)))
        lines.append("# TYPE %s %s" % (family.name, family.kind))
        for values, child in family.children():
            labels = family.label_dict(values)
            if family.kind == "histogram":
                cumulative = child.cumulative_counts()
                for bound, count in zip(family.buckets, cumulative):
                    lines.append(
                        "%s_bucket%s %s"
                        % (
                            family.name,
                            _format_labels(labels, {"le": _format_value(bound)}),
                            _format_value(count),
                        )
                    )
                lines.append(
                    "%s_bucket%s %s"
                    % (family.name, _format_labels(labels, {"le": "+Inf"}), _format_value(cumulative[-1]))
                )
                lines.append(
                    "%s_sum%s %s"
                    % (family.name, _format_labels(labels), _format_value(child.sum))
                )
                lines.append(
                    "%s_count%s %s"
                    % (family.name, _format_labels(labels), _format_value(child.count))
                )
            else:
                lines.append(
                    "%s%s %s"
                    % (family.name, _format_labels(labels), _format_value(child.value))
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _json_value(value: float):
    """A strictly-JSON-safe sample value.

    ``json.dumps`` would otherwise emit bare ``Infinity`` / ``NaN``
    tokens, which are not valid JSON; non-finite values are encoded as
    their Prometheus text strings instead.
    """
    if math.isfinite(value):
        return value
    return _format_value(value)


def snapshot(registry: MetricsRegistry, tracer: Optional[Tracer] = None) -> Dict:
    """A JSON-able snapshot of every metric (and the tracer's state).

    Taken under the registry lock: concurrent writers either land wholly
    before or wholly after the snapshot, never halfway through a
    multi-metric update.
    """
    with registry.lock:
        return _snapshot_locked(registry, tracer)


def _snapshot_locked(registry: MetricsRegistry, tracer: Optional[Tracer]) -> Dict:
    metrics = {}
    for family in registry:
        samples = []
        for values, child in family.children():
            labels = family.label_dict(values)
            if family.kind == "histogram":
                samples.append(
                    {
                        "labels": labels,
                        "buckets": list(family.buckets),
                        "counts": list(child.counts),
                        "sum": _json_value(child.sum),
                        "count": child.count,
                    }
                )
            else:
                samples.append({"labels": labels, "value": _json_value(child.value)})
        metrics[family.name] = {
            "type": family.kind,
            "help": family.help,
            "samples": samples,
        }
    payload = {"metrics": metrics}
    if tracer is not None:
        payload["trace"] = {
            "capacity": tracer.capacity,
            "buffered": len(tracer),
            "recorded": tracer.recorded,
            "dropped": tracer.dropped,
            "events": [event.as_dict() for event in tracer.events()],
        }
    return payload


def render_json(registry: MetricsRegistry, tracer: Optional[Tracer] = None, indent: int = 2) -> str:
    return json.dumps(snapshot(registry, tracer), indent=indent, sort_keys=True) + "\n"


class TelemetryServer:
    """Serves a live telemetry object over HTTP from a daemon thread.

    Pass a :class:`~repro.telemetry.health.HealthEvaluator` as
    ``health`` to additionally serve ``/health``: rule-by-rule status
    JSON, HTTP 200 while the verdict is ``ok``/``warn`` and 503 on
    ``fail`` so probes and load balancers get the conventional signal.
    Pass a :class:`~repro.telemetry.history.HistoryStore` as ``history``
    to serve ``/history`` (optionally filtered with ``?metric=name``).
    Pass an :class:`~repro.telemetry.alerts.AlertManager` as ``alerts``
    to serve ``/alerts`` (current states, recent transitions, sink
    accounting) and ``/rules`` (the declarative rule catalogue).

    ``routes`` extends the server with application endpoints: a callable
    ``routes(path, query) -> Optional[(status, content_type, body)]``
    consulted after the built-in paths and before the 404 -- the
    monitoring service mounts its ``/tenants/...`` query API this way
    without subclassing the handler.
    """

    def __init__(
        self,
        telemetry,
        host: str = "127.0.0.1",
        port: int = 9109,
        health=None,
        history=None,
        alerts=None,
        routes=None,
    ) -> None:
        self.telemetry = telemetry
        self.health = health
        self.history = history
        self.alerts = alerts
        self.routes = routes
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path, _, query = self.path.partition("?")
                if path in ("/", "/metrics"):
                    body = render_prometheus(outer.telemetry.registry)
                    self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
                elif path == "/snapshot":
                    body = render_json(outer.telemetry.registry, outer.telemetry.tracer)
                    self._reply(200, "application/json", body)
                elif path == "/trace":
                    body = outer.telemetry.tracer.to_jsonl()
                    self._reply(200, "application/x-ndjson", body)
                elif path == "/spans":
                    body = outer.telemetry.spans.to_jsonl()
                    self._reply(200, "application/x-ndjson", body)
                elif path == "/history" and outer.history is not None:
                    metric = None
                    for pair in query.split("&"):
                        key, _, value = pair.partition("=")
                        if key == "metric" and value:
                            metric = value
                    body = json.dumps(
                        outer.history.as_dict(metric=metric), indent=2, sort_keys=True
                    ) + "\n"
                    self._reply(200, "application/json", body)
                elif path == "/alerts" and outer.alerts is not None:
                    body = json.dumps(
                        outer.alerts.as_dict(), indent=2, sort_keys=True
                    ) + "\n"
                    self._reply(200, "application/json", body)
                elif path == "/rules" and outer.alerts is not None:
                    body = json.dumps(
                        outer.alerts.describe_rules(), indent=2, sort_keys=True
                    ) + "\n"
                    self._reply(200, "application/json", body)
                elif path == "/health" and outer.health is not None:
                    report = outer.health.evaluate()
                    status = 503 if report.status == "fail" else 200
                    body = json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
                    self._reply(status, "application/json", body)
                else:
                    handled = None
                    if outer.routes is not None:
                        try:
                            handled = outer.routes(path, query)
                        except Exception as exc:  # surface, don't kill the thread
                            handled = (
                                500,
                                "application/json",
                                json.dumps({"error": str(exc)}) + "\n",
                            )
                    if handled is not None:
                        status, content_type, body = handled
                        self._reply(status, content_type, body)
                    else:
                        self._reply(404, "text/plain", "not found: %s\n" % path)

            def _reply(self, status: int, content_type: str, body: str) -> None:
                data = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *args) -> None:  # silence per-request noise
                pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._serving = False

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral one)."""
        return self._server.server_address[1]

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> "TelemetryServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._closed:
            raise RuntimeError("server already closed")
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="telemetry-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self, install_sigint_handler: bool = False) -> None:
        """Serve on the calling thread (the CLI's ``--serve`` loop).

        With ``install_sigint_handler``, SIGINT triggers a graceful
        shutdown (the serve loop exits, the socket closes) instead of
        unwinding through ``KeyboardInterrupt`` mid-request; the
        previous handler is restored before returning.  ``signal.signal``
        is only legal on the main thread, so off the main thread (the
        monitoring service embeds this loop in a worker) no handler is
        installed and a ``KeyboardInterrupt`` that reaches the loop is
        caught and turned into a clean close instead.
        """
        if self._closed:
            raise RuntimeError("server already closed")
        previous_handler = None
        if (
            install_sigint_handler
            and threading.current_thread() is threading.main_thread()
        ):
            def _on_sigint(signum, frame):
                # shutdown() blocks until the poll loop acknowledges, and
                # this handler runs *on* the serving thread -- request it
                # from a helper thread so the handler returns immediately
                # and the loop can exit at its next poll tick.
                threading.Thread(
                    target=self._server.shutdown, name="telemetry-shutdown", daemon=True
                ).start()

            previous_handler = signal.signal(signal.SIGINT, _on_sigint)
        self._serving = True
        try:
            self._server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            if previous_handler is not None:
                signal.signal(signal.SIGINT, previous_handler)
            self.close()

    def close(self) -> None:
        """Shut down and release the port; safe to call any number of times."""
        if self._closed:
            return
        self._closed = True
        if self._serving:
            # shutdown() waits on the serve loop's acknowledgement event,
            # which only exists once a loop has run -- guard so closing a
            # never-started server cannot block.
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)
        self._thread = None

    # Backwards-compatible alias (PR 2 name).
    def stop(self) -> None:
        self.close()

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def start_http_server(
    telemetry,
    host: str = "127.0.0.1",
    port: int = 9109,
    health=None,
    history=None,
    alerts=None,
) -> TelemetryServer:
    """Start a daemon-thread HTTP endpoint for ``telemetry``."""
    return TelemetryServer(
        telemetry, host=host, port=port, health=health, history=history, alerts=alerts
    ).start()
