"""Traffic-anomaly detectors computed from the sketches themselves.

The generality argument of NitroSketch/UnivMon is that one sketch
answers many operational questions; this module asks three of them at
every epoch boundary and emits the answers as metrics the alert plane
(:mod:`repro.telemetry.alerts`) consumes:

* **K-ary change detection** -- the sketch family's original purpose
  (Krishnamurthy et al.): linear sketches subtract, so the difference
  between this epoch's sketch and the previous cumulative snapshot *is*
  a sketch of this epoch's traffic, and querying it against the last
  epoch's estimates yields per-flow change.  ``anomaly_change_score``
  is the largest single-flow epoch-over-epoch change as a fraction of
  epoch traffic; ``anomaly_heavy_changers`` counts flows above a share
  threshold.
* **Entropy collapse (DDoS onset/offset)** -- a volumetric attack on
  one victim concentrates the flow-size distribution, collapsing its
  empirical entropy.  We estimate epoch entropy from the heavy-hitter
  estimates plus a singleton-mice residual, track an EMA baseline that
  *freezes during a detected collapse* (so the attack cannot poison its
  own baseline), and export ``anomaly_entropy_drop`` -- the fractional
  drop against baseline -- for the ``entropy_collapse`` alert rule to
  threshold.  Offset is symmetric: traffic recovers, the drop returns
  to ~0, the alert resolves.
* **Heavy-hitter churn** -- Jaccard distance between successive epochs'
  heavy-hitter key sets (``anomaly_hh_churn``): routing flaps and sweep
  attacks replace the elephant population even when volume is steady.

Everything is estimated from the sketch + top-k state the monitor
already maintains -- no per-flow ground truth, exactly the always-on
deployment the paper argues for.  :func:`ddos_onset_trace` builds the
matching synthetic MACCDC-style scenario: CAIDA-like background with a
mid-trace window where most packets are redirected at one victim flow.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.telemetry import NULL_TELEMETRY

__all__ = [
    "SketchAnomalyDetectors",
    "ddos_onset_trace",
    "default_alert_rules",
    "entropy_from_estimates",
]


def entropy_from_estimates(estimates: Dict[int, float], packets: float) -> float:
    """Entropy proxy: heavy estimates + singleton-mice residual.

    Estimated heavy flows contribute their exact ``-p log2 p`` terms;
    whatever epoch mass they do not explain is modelled as
    single-packet mice (each ``1/m``), which keeps the background
    epochs' entropy high and the attack epochs' entropy low -- the
    contrast the detector needs.  A proxy, not an estimator with a
    proven bound; its job is a stable, monotone-in-concentration
    signal.  Shared by the per-epoch detectors and the window-scoped
    gauges (:func:`repro.control.windows.export_window_metrics`).
    """
    if packets <= 0:
        return 0.0
    entropy = 0.0
    explained = 0.0
    for value in sorted(estimates.values(), reverse=True):
        value = min(value, packets - explained)
        if value <= 0:
            break
        share = value / packets
        entropy -= share * math.log2(share)
        explained += value
    residual = packets - explained
    if residual > 0 and packets > 1:
        entropy += (residual / packets) * math.log2(packets)
    return entropy


class SketchAnomalyDetectors:
    """Per-epoch change / entropy / churn signals from a live monitor.

    Call :meth:`observe_epoch` at every epoch boundary with the monitor
    (a :class:`~repro.core.nitro.NitroSketch` or bare canonical sketch)
    and the number of packets the epoch carried.  The monitor keeps
    ingesting cumulatively; the detectors snapshot its counters each
    epoch and work on differences, the K-ary idiom.

    Parameters
    ----------
    telemetry:
        Metric/event sink; defaults to the null sink.
    top_candidates:
        Cap on per-epoch candidate flows (current top-k union previous
        heavies) that are queried.
    heavy_share:
        A flow is "heavy" in an epoch when its estimated epoch count is
        at least this fraction of the epoch's packets (feeds churn).
    change_share:
        A flow is a "heavy changer" when its epoch-over-epoch change is
        at least this fraction of the epoch's packets.
    ema_alpha:
        EMA weight for the entropy baseline.
    freeze_drop:
        Baseline updates pause while the current drop exceeds this
        value, so a long attack cannot drag the baseline down and
        mask its own resolution.
    cumulative:
        True (default) when the observed monitor keeps ingesting across
        epochs (the :class:`~repro.switchsim.daemon.MeasurementDaemon`
        shape): epoch traffic is recovered by differencing against the
        previous boundary's counter snapshot.  False when the caller
        hands a *fresh* monitor per epoch (the
        :class:`~repro.control.plane.ControlPlane` shape, and the
        windowed daemon shape -- ``MeasurementDaemon(window_epochs=W)``
        hands the in-progress ring epoch just before rotating it): the
        sketch already holds exactly one epoch and is queried directly.
    """

    def __init__(
        self,
        telemetry=NULL_TELEMETRY,
        top_candidates: int = 128,
        heavy_share: float = 0.01,
        change_share: float = 0.05,
        ema_alpha: float = 0.3,
        freeze_drop: float = 0.2,
        cumulative: bool = True,
    ) -> None:
        if top_candidates < 1:
            raise ValueError("top_candidates must be >= 1")
        if not 0 < ema_alpha <= 1:
            raise ValueError("ema_alpha must be in (0, 1]")
        self.telemetry = telemetry
        self.top_candidates = top_candidates
        self.heavy_share = heavy_share
        self.change_share = change_share
        self.ema_alpha = ema_alpha
        self.freeze_drop = freeze_drop
        self.cumulative = cumulative
        self.epochs = 0
        #: Clone of the monitored sketch holding last epoch's cumulative
        #: counters (lazily created; refreshed in place each epoch).
        self._prev_cumulative = None
        self._prev_epoch_estimates: Dict[int, float] = {}
        self._prev_heavy: frozenset = frozenset()
        self._baseline_entropy: Optional[float] = None
        self.last_signals: Optional[Dict[str, float]] = None

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _sketch_of(monitor):
        """The canonical sketch inside a monitor (or the monitor itself)."""
        inner = getattr(monitor, "sketch", monitor)
        if not hasattr(inner, "counters") or not hasattr(inner, "query_batch"):
            raise TypeError(
                "monitor %r does not expose a queryable counter sketch"
                % (type(monitor).__name__,)
            )
        return inner

    @staticmethod
    def _clone_sketch(sketch):
        """A bare same-seed sketch whose counters we can overwrite."""
        clone = type(sketch)(
            depth=sketch.depth, width=sketch.width, seed=sketch.seed
        )
        np.copyto(clone.counters, sketch.counters)
        if hasattr(sketch, "total"):
            clone.total = sketch.total
        return clone

    def _candidates(self, monitor, sketch) -> List[int]:
        keys = set(self._prev_heavy)
        topk = getattr(monitor, "topk", None)
        if topk is not None and hasattr(topk, "keys"):
            keys.update(int(key) for key in topk.keys())
        if not keys:
            return []
        candidates = sorted(keys)
        if len(candidates) <= self.top_candidates:
            return candidates
        estimates = sketch.query_batch(np.asarray(candidates, dtype=np.int64))
        order = np.argsort(estimates)[::-1][: self.top_candidates]
        return [candidates[int(i)] for i in order]

    def _epoch_estimates(self, sketch, candidates: List[int]) -> Dict[int, float]:
        """Estimated per-flow packet counts for *this epoch only*."""
        if not candidates:
            return {}
        keys = np.asarray(candidates, dtype=np.int64)
        if not self.cumulative or self._prev_cumulative is None:
            epoch_values = np.asarray(sketch.query_batch(keys), dtype=np.float64)
        elif hasattr(sketch, "difference"):
            epoch_view = sketch.difference(self._prev_cumulative)
            epoch_values = np.asarray(
                epoch_view.query_batch(keys), dtype=np.float64
            )
        else:
            now_values = np.asarray(sketch.query_batch(keys), dtype=np.float64)
            prev_values = np.asarray(
                self._prev_cumulative.query_batch(keys), dtype=np.float64
            )
            epoch_values = now_values - prev_values
        epoch_values = np.maximum(epoch_values, 0.0)
        return {key: float(value) for key, value in zip(candidates, epoch_values)}

    @staticmethod
    def _entropy_bits(estimates: Dict[int, float], packets: float) -> float:
        """See :func:`entropy_from_estimates` (module-level since PR 9)."""
        return entropy_from_estimates(estimates, packets)

    # -- the epoch hook -----------------------------------------------------

    def observe_epoch(
        self, monitor, packets: float, now: Optional[float] = None
    ) -> Optional[Dict[str, float]]:
        """Compute this epoch's signals and export them as gauges.

        ``packets`` is the number of packets the epoch carried (the
        caller -- daemon or control plane -- knows it exactly).  Returns
        the signal dict, or ``None`` for an empty epoch.
        """
        packets = float(packets)
        if packets <= 0:
            return None
        sketch = self._sketch_of(monitor)
        candidates = self._candidates(monitor, sketch)
        estimates = self._epoch_estimates(sketch, candidates)

        # Change detection: epoch-over-epoch per-flow deltas.  The first
        # epoch has no predecessor, so its score is defined as zero --
        # otherwise every flow would read as a "change" at startup.
        change_score = 0.0
        heavy_changers = 0
        if self.epochs > 0:
            union = set(estimates) | set(self._prev_epoch_estimates)
            for key in union:
                delta = abs(
                    estimates.get(key, 0.0)
                    - self._prev_epoch_estimates.get(key, 0.0)
                )
                share = delta / packets
                change_score = max(change_score, share)
                if share >= self.change_share:
                    heavy_changers += 1

        # Entropy collapse against a frozen-under-attack EMA baseline.
        entropy = self._entropy_bits(estimates, packets)
        if self._baseline_entropy is None:
            self._baseline_entropy = entropy
        baseline = self._baseline_entropy
        drop = 0.0 if baseline <= 0 else max(0.0, 1.0 - entropy / baseline)
        if drop < self.freeze_drop:
            self._baseline_entropy = (
                (1.0 - self.ema_alpha) * baseline + self.ema_alpha * entropy
            )

        # Heavy-hitter churn: Jaccard distance of successive heavy sets.
        heavy = frozenset(
            key
            for key, value in estimates.items()
            if value >= self.heavy_share * packets
        )
        if self.epochs == 0 or (not heavy and not self._prev_heavy):
            churn = 0.0
        else:
            union_size = len(heavy | self._prev_heavy)
            churn = 1.0 - len(heavy & self._prev_heavy) / union_size

        signals = {
            "epoch": float(self.epochs),
            "packets": packets,
            "change_score": change_score,
            "heavy_changers": float(heavy_changers),
            "entropy_bits": entropy,
            "entropy_baseline_bits": self._baseline_entropy,
            "entropy_drop": drop,
            "hh_churn": churn,
        }
        telemetry = self.telemetry
        telemetry.gauge("anomaly_change_score", change_score)
        telemetry.gauge("anomaly_heavy_changers", heavy_changers)
        telemetry.gauge("anomaly_entropy_bits", entropy)
        telemetry.gauge("anomaly_entropy_baseline_bits", self._baseline_entropy)
        telemetry.gauge("anomaly_entropy_drop", drop)
        telemetry.gauge("anomaly_hh_churn", churn)
        telemetry.gauge("anomaly_epoch_packets", packets)
        telemetry.count("anomaly_epochs_total")
        telemetry.event("anomaly.epoch", **signals)

        # Roll the epoch window forward (snapshotting only matters for
        # cumulative monitors; fresh-per-epoch monitors are replaced).
        if self.cumulative:
            if self._prev_cumulative is None:
                self._prev_cumulative = self._clone_sketch(sketch)
            else:
                np.copyto(self._prev_cumulative.counters, sketch.counters)
                if hasattr(sketch, "total"):
                    self._prev_cumulative.total = sketch.total
        self._prev_epoch_estimates = estimates
        self._prev_heavy = heavy
        self.epochs += 1
        self.last_signals = signals
        return signals

    def reset(self) -> None:
        self.epochs = 0
        self._prev_cumulative = None
        self._prev_epoch_estimates = {}
        self._prev_heavy = frozenset()
        self._baseline_entropy = None
        self.last_signals = None


def ddos_onset_trace(
    n_packets: int = 60_000,
    attack_start: float = 1.0 / 3.0,
    attack_stop: float = 2.0 / 3.0,
    attack_share: float = 0.85,
    n_flows: int = 4_000,
    skew: float = 1.1,
    seed: int = 7,
):
    """CAIDA-like background with a mid-trace single-victim flood.

    Between ``attack_start`` and ``attack_stop`` (trace fractions),
    ``attack_share`` of packets are redirected to one victim flow key
    outside the background key space -- the volumetric-DDoS shape whose
    onset collapses flow-size entropy and whose offset restores it.
    (:func:`repro.traffic.traces.ddos_like` models the *source* side of
    an attack -- many attackers, which raises key entropy; this builds
    the victim side, which collapses it.)
    """
    from repro.traffic.traces import Trace, caida_like

    if not 0 <= attack_start < attack_stop <= 1:
        raise ValueError("need 0 <= attack_start < attack_stop <= 1")
    if not 0 < attack_share <= 1:
        raise ValueError("attack_share must be in (0, 1]")
    base = caida_like(n_packets, n_flows=n_flows, skew=skew, seed=seed)
    keys = base.keys.copy()
    start = int(n_packets * attack_start)
    stop = int(n_packets * attack_stop)
    rng = np.random.default_rng(seed + 0xDD05)
    # Victim key far outside any background key space (scramble_keys
    # keeps background keys within 63 bits of hash output; collisions
    # are astronomically unlikely but harmless anyway).
    victim = np.int64((1 << 61) + 0xDD05)
    window = keys[start:stop]
    window[rng.random(stop - start) < attack_share] = victim
    keys[start:stop] = window
    return Trace(
        name="ddos_onset",
        keys=keys,
        sizes=base.sizes,
        timestamps=base.timestamps,
        src_addresses=base.src_addresses,
    )


def default_alert_rules(
    epoch_seconds: float = 1.0,
    entropy_drop: float = 0.25,
    change_score: float = 0.2,
    churn: float = 0.6,
    queue_depth: int = 64,
    restart_budget: int = 1,
    budget: float = 1.0,
):
    """The stock rule set wired to the detectors and the ops surface.

    ``epoch_seconds`` scales the for-durations: the entropy rule needs
    the collapse to persist for two epochs (one evaluation of pending,
    then firing), matching a 100 ms-epoch deployment at any cadence.
    """
    from repro.telemetry.alerts import BurnRateRule, ThresholdRule

    return [
        ThresholdRule(
            "entropy_collapse",
            "anomaly_entropy_drop",
            threshold=entropy_drop,
            clear_threshold=entropy_drop / 2.0,
            for_seconds=2.0 * epoch_seconds,
            severity="critical",
            description="Flow-size entropy collapsed vs baseline "
            "(volumetric DDoS onset).",
        ),
        ThresholdRule(
            "traffic_change",
            "anomaly_change_score",
            threshold=change_score,
            clear_threshold=change_score / 2.0,
            severity="warning",
            description="A single flow's epoch-over-epoch change exceeds "
            "%.0f%% of epoch traffic (K-ary change detection)." % (100 * change_score),
        ),
        ThresholdRule(
            "heavy_hitter_churn",
            "anomaly_hh_churn",
            threshold=churn,
            clear_threshold=churn / 2.0,
            for_seconds=2.0 * epoch_seconds,
            severity="warning",
            description="The heavy-hitter population is being replaced "
            "epoch over epoch.",
        ),
        ThresholdRule(
            "daemon_queue_backlog",
            "daemon_queue_depth",
            threshold=queue_depth,
            clear_threshold=queue_depth / 2.0,
            severity="critical",
            description="The measurement daemon's ingest queue is "
            "backing up (separate-thread integration falling behind).",
        ),
        ThresholdRule(
            "worker_crash_loop",
            "parallel_worker_restarts_total",
            threshold=restart_budget,
            severity="warning",
            description="A parallel ingest worker needed crash-recovery "
            "respawns.",
        ),
        ThresholdRule(
            "guarantee_violation",
            "audit_guarantee_violations",
            threshold=1,
            severity="critical",
            description="The live audit recorded a Theorem 1/2/5 "
            "bound violation.",
        ),
        BurnRateRule(
            "error_budget_burn",
            "audit_bound_ratio",
            budget=budget,
            long_seconds=10.0 * epoch_seconds,
            short_seconds=2.0 * epoch_seconds,
            factor=0.9,
            labels={"component": "audit"},
            severity="critical",
            description="Observed error is burning the Theorem-2 error "
            "budget in both the long and short window.",
        ),
    ]
