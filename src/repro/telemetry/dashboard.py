"""``nitrosketch top``: a live terminal dashboard over telemetry snapshots.

Polls a metrics snapshot -- from a live :class:`~repro.telemetry.Telemetry`
object in-process, or over HTTP from a ``TelemetryServer``'s
``/snapshot`` route -- and renders the operational state the paper's
story turns on: observed error vs the theoretical bound, the sampling
probability, ingest throughput (derived from counter deltas between
polls), per-stage pipeline span timings, and the health rule verdicts.

The renderer is a pure function (``snapshot [+ previous snapshot] ->
string``) so the frame content is unit-testable without a terminal; the
:class:`TopLoop` driver adds the ANSI clear/redraw and the poll cadence.
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Dict, List, Optional, Tuple

_CLEAR = "\x1b[2J\x1b[H"

#: health status value -> display word.
_STATUS_WORDS = {0: "ok", 1: "WARN", 2: "FAIL"}


def _to_float(value) -> float:
    """Sample value -> float (non-finite values arrive JSON-encoded as
    ``"+Inf"`` / ``"-Inf"`` / ``"NaN"`` strings)."""
    if isinstance(value, str):
        return float(value.replace("+Inf", "inf").replace("-Inf", "-inf"))
    return float(value)


def _samples(snap: Dict, metric: str) -> List[Tuple[Dict[str, str], Dict]]:
    family = snap.get("metrics", {}).get(metric)
    if not family:
        return []
    return [(sample.get("labels", {}), sample) for sample in family["samples"]]


def _value(snap: Dict, metric: str, **labels) -> Optional[float]:
    """Sum of matching scalar samples (subset label match), or None."""
    total, matched = 0.0, False
    for sample_labels, sample in _samples(snap, metric):
        if all(sample_labels.get(k) == v for k, v in labels.items()) and "value" in sample:
            total += _to_float(sample["value"])
            matched = True
    return total if matched else None


def _format_count(value: float) -> str:
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= factor:
            return "%.2f%s" % (value / factor, suffix)
    return "%.0f" % value


def _format_seconds(value: float) -> str:
    for factor, suffix in ((1.0, "s"), (1e-3, "ms"), (1e-6, "µs")):
        if abs(value) >= factor:
            return "%.1f%s" % (value / factor, suffix)
    return "%.0fns" % (value / 1e-9)


def _format_error(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value != value or value in (float("inf"), float("-inf")):
        return str(value)
    return "%.3f%%" % (100.0 * value)


def render_dashboard(
    snap: Dict,
    previous: Optional[Dict] = None,
    interval_seconds: Optional[float] = None,
    clock: Optional[float] = None,
) -> str:
    """Render one dashboard frame from a snapshot dict.

    ``previous`` and ``interval_seconds`` enable the throughput section
    (counter deltas per second); without them, cumulative totals show.
    """
    lines: List[str] = []
    stamp = time.strftime("%H:%M:%S", time.localtime(clock))
    probability = _value(snap, "nitro_sampling_probability")
    header = "nitrosketch top — %s" % stamp
    if probability is not None:
        header += "   p=%.6g" % probability
    converged = _value(snap, "nitro_convergence_total")
    if converged is not None:
        header += "   converged=%s" % ("yes" if converged > 0 else "no")
    lines.append(header)
    lines.append("=" * max(len(header), 64))

    # -- accuracy: observed error vs the live theoretical bound ----------
    mean_err = _value(snap, "audit_relative_error", stat="mean")
    p99_err = _value(snap, "audit_relative_error", stat="p99")
    bound = _value(snap, "audit_error_bound")
    ratio = _value(snap, "audit_bound_ratio")
    violations = _value(snap, "audit_guarantee_violations")
    tracked = _value(snap, "audit_tracked_flows")
    if mean_err is None and bound is None:
        lines.append("accuracy    (no auditor attached)")
    else:
        lines.append(
            "accuracy    rel.err mean %s  p99 %s   tracked %s flows"
            % (
                _format_error(mean_err),
                _format_error(p99_err),
                "-" if tracked is None else "%d" % tracked,
            )
        )
        bar = ""
        if ratio is not None and ratio == ratio and ratio not in (float("inf"),):
            filled = min(int(round(40 * min(ratio, 1.0))), 40)
            bar = "[%s%s] %.1f%% of bound" % ("#" * filled, "." * (40 - filled), 100 * ratio)
        lines.append(
            "guarantee   bound %s   %s   violations %s"
            % (
                "-" if bound is None else _format_count(bound),
                bar or "ratio -",
                "-" if violations is None else "%d" % violations,
            )
        )

    # -- throughput: counter deltas between polls ------------------------
    for metric, label in (
        ("nitro_packets_total", "sketch pkts"),
        ("daemon_packets_total", "daemon pkts"),
        ("pipeline_batches_total", "batches"),
    ):
        now_total = _value(snap, metric)
        if now_total is None:
            continue
        if previous is not None and interval_seconds and interval_seconds > 0:
            before = _value(previous, metric) or 0.0
            rate = max(now_total - before, 0.0) / interval_seconds
            lines.append(
                "throughput  %-12s %s/s  (total %s)"
                % (label, _format_count(rate), _format_count(now_total))
            )
        else:
            lines.append(
                "throughput  %-12s total %s" % (label, _format_count(now_total))
            )

    # -- per-stage span timings ------------------------------------------
    stages = []
    for labels, sample in _samples(snap, "pipeline_stage_seconds"):
        count = sample.get("count", 0)
        if count:
            mean = _to_float(sample.get("sum", 0.0)) / count
            stages.append((labels.get("platform", "?"), labels.get("stage", "?"), mean, count))
    if stages:
        stages.sort(key=lambda item: -item[2])
        lines.append("stages      (mean per batch)")
        for platform, stage, mean, count in stages[:8]:
            lines.append(
                "  %-28s %10s  x%d" % ("%s/%s" % (platform, stage), _format_seconds(mean), count)
            )

    # -- per-worker panel (parallel data plane) --------------------------
    worker_rows: Dict[str, Dict[str, float]] = {}

    def _per_worker(metric: str, key: str, from_histogram: bool = False) -> None:
        for labels, sample in _samples(snap, metric):
            worker = labels.get("worker")
            if worker is None:
                continue
            row = worker_rows.setdefault(worker, {})
            if from_histogram:
                row[key] = _to_float(sample.get("sum", 0.0))
            elif "value" in sample:
                row[key] = _to_float(sample["value"])

    _per_worker("parallel_worker_packets_total", "packets")
    _per_worker("parallel_worker_cpu_mpps", "cpu_mpps")
    _per_worker("parallel_worker_restarts", "restarts")
    _per_worker("parallel_worker_restarts_total", "restarts")
    _per_worker("parallel_corrupt_frames_total", "corrupt")
    _per_worker("parallel_mailbox_ack_seconds", "ack", from_histogram=True)
    _per_worker(
        "parallel_mailbox_publish_wait_seconds", "wait", from_histogram=True
    )
    if worker_rows:
        host_cpus = _value(snap, "parallel_host_cpus")
        lines.append(
            "workers     (%d shard%s%s)"
            % (
                len(worker_rows),
                "" if len(worker_rows) == 1 else "s",
                "" if host_cpus is None else ", %d host cpus" % host_cpus,
            )
        )
        for worker in sorted(worker_rows, key=lambda w: int(w) if w.isdigit() else 0):
            row = worker_rows[worker]
            lines.append(
                "  w%-3s pkts %-8s cpu %5.2f Mpps  restarts %d  corrupt %d"
                "  ack %s  wait %s"
                % (
                    worker,
                    _format_count(row.get("packets", 0.0)),
                    row.get("cpu_mpps", 0.0),
                    int(row.get("restarts", 0)),
                    int(row.get("corrupt", 0)),
                    _format_seconds(row.get("ack", 0.0)),
                    _format_seconds(row.get("wait", 0.0)),
                )
            )

    # -- tenants panel (always-on monitoring service) --------------------
    tenants_active = _value(snap, "service_tenants_active")
    if tenants_active is not None:
        connections = _value(snap, "service_connections_active")
        memory = _value(snap, "service_memory_bytes")
        evicted = _value(snap, "service_tenants_evicted_total")
        lines.append(
            "tenants     %d resident  %s conn  %s  evicted %s"
            % (
                int(tenants_active),
                "-" if connections is None else "%d" % connections,
                "-" if memory is None else _format_count(memory) + "B",
                "-" if evicted is None else "%d" % evicted,
            )
        )
        tenant_rows: Dict[str, Dict[str, float]] = {}

        def _per_tenant(metric: str, key: str) -> None:
            for labels, sample in _samples(snap, metric):
                tenant = labels.get("tenant")
                if tenant is not None and "value" in sample:
                    tenant_rows.setdefault(tenant, {})[key] = _to_float(
                        sample["value"]
                    )

        _per_tenant("service_ingest_packets_total", "packets")
        _per_tenant("service_queue_depth", "queue")
        _per_tenant("service_tenant_memory_bytes", "memory")
        _per_tenant("service_dropped_batches_total", "dropped")
        for tenant in sorted(
            tenant_rows, key=lambda t: -tenant_rows[t].get("packets", 0.0)
        )[:8]:
            row = tenant_rows[tenant]
            lines.append(
                "  %-20s pkts %-8s queue %-4d mem %-8s dropped %d"
                % (
                    tenant,
                    _format_count(row.get("packets", 0.0)),
                    int(row.get("queue", 0)),
                    _format_count(row.get("memory", 0.0)) + "B",
                    int(row.get("dropped", 0)),
                )
            )

    # -- sliding window (window_* gauges from export_window_metrics) -----
    window_packets = _value(snap, "window_packets")
    if window_packets is not None:
        spanned = _value(snap, "window_epochs_spanned")
        rotated = _value(snap, "window_epochs_rotated")
        memory = _value(snap, "window_memory_bytes")
        lines.append(
            "window      %s pkts over %s epoch sketch%s  (rotated %s, %s)"
            % (
                _format_count(window_packets),
                "-" if spanned is None else "%d" % spanned,
                "" if spanned == 1 else "es",
                "-" if rotated is None else "%d" % rotated,
                "-" if memory is None else _format_count(memory) + "B",
            )
        )
        hitters = _value(snap, "window_heavy_hitters")
        entropy = _value(snap, "window_entropy_bits")
        if hitters is not None or entropy is not None:
            lines.append(
                "            heavy hitters %s   entropy %s"
                % (
                    "-" if hitters is None else "%d" % hitters,
                    "-" if entropy is None else "%.2f bits" % entropy,
                )
            )

    # -- active alerts (the alert plane's ALERTS gauge family) -----------
    alert_rows: List[Tuple[int, str, str, str, str]] = []
    _ALERT_ORDER = {"firing": 0, "pending": 1, "resolved": 2}
    for labels, sample in _samples(snap, "ALERTS"):
        state = labels.get("alertstate", "")
        if state not in _ALERT_ORDER or _to_float(sample.get("value", 0)) < 1:
            continue
        alert_rows.append(
            (
                _ALERT_ORDER[state],
                labels.get("alertname", "?"),
                state,
                labels.get("severity", ""),
                labels.get("labelset", ""),
            )
        )
    if _samples(snap, "ALERTS"):
        if alert_rows:
            alert_rows.sort()
            firing = sum(1 for row in alert_rows if row[2] == "firing")
            lines.append(
                "alerts      %d active (%d firing)" % (len(alert_rows), firing)
            )
            for _, name, state, severity, labelset in alert_rows[:8]:
                lines.append(
                    "  %-8s %-24s %s%s"
                    % (
                        state.upper() if state == "firing" else state,
                        name,
                        severity,
                        " {%s}" % labelset if labelset else "",
                    )
                )
        else:
            lines.append("alerts      none active")

    # -- health rule verdicts --------------------------------------------
    verdicts = []
    overall = None
    for labels, sample in _samples(snap, "health_status"):
        word = _STATUS_WORDS.get(int(_to_float(sample.get("value", 0))), "?")
        if labels.get("rule") == "overall":
            overall = word
        else:
            verdicts.append("%s %s" % (labels.get("rule", "?"), word))
    if overall is not None:
        lines.append("health      %s   (%s)" % (overall, ", ".join(sorted(verdicts))))

    return "\n".join(lines) + "\n"


class SnapshotSource:
    """Uniform snapshot access: a live Telemetry object or a /snapshot URL."""

    def __init__(self, telemetry=None, url: Optional[str] = None, timeout: float = 5.0) -> None:
        if (telemetry is None) == (url is None):
            raise ValueError("pass exactly one of telemetry or url")
        self.telemetry = telemetry
        self.url = url
        self.timeout = timeout

    def fetch(self) -> Dict:
        if self.telemetry is not None:
            return self.telemetry.snapshot()
        with urllib.request.urlopen(self.url, timeout=self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))


class TopLoop:
    """Poll-and-redraw driver for ``nitrosketch top``.

    Parameters
    ----------
    source:
        Where snapshots come from.
    interval:
        Seconds between polls.
    iterations:
        Stop after this many frames (``None`` = run until interrupted).
    clear:
        Prefix each frame with the ANSI clear sequence (off for tests
        and non-TTY output).
    """

    def __init__(
        self,
        source: SnapshotSource,
        interval: float = 1.0,
        iterations: Optional[int] = None,
        clear: bool = True,
        out=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.source = source
        self.interval = interval
        self.iterations = iterations
        self.clear = clear
        self.out = out
        self.frames = 0

    def run(self) -> int:
        """Render frames until the iteration budget or Ctrl-C; returns 0."""
        import sys

        out = self.out if self.out is not None else sys.stdout
        previous: Optional[Dict] = None
        try:
            while self.iterations is None or self.frames < self.iterations:
                snap = self.source.fetch()
                frame = render_dashboard(
                    snap, previous=previous, interval_seconds=self.interval
                )
                if self.clear:
                    out.write(_CLEAR)
                out.write(frame)
                out.flush()
                previous = snap
                self.frames += 1
                if self.iterations is not None and self.frames >= self.iterations:
                    break
                time.sleep(self.interval)
        except KeyboardInterrupt:
            pass
        return 0
