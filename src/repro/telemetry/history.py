"""A queryable time-series history of registry snapshots.

Prometheus-style exposition is instantaneous: ``/metrics`` answers "what
is the value *now*".  A long-running monitor also needs "what was it
over the last hour" without an external scraper -- the NetWatch exemplar
persists exactly this kind of scrape history.  :class:`HistoryStore`
keeps a **bounded** in-memory ring of periodic snapshot samples with
automatic downsampling:

* every :meth:`record` call captures the scalar surface of a snapshot
  (counter/gauge values, histogram ``count``/``sum``) -- histograms'
  bucket vectors are deliberately dropped to keep samples small;
* samples are admitted every ``stride``-th record; when the ring hits
  ``capacity``, every second (oldest-first) sample is discarded and the
  stride doubles.  Memory stays bounded forever while the retained
  window keeps covering the whole run at geometrically coarser
  resolution -- the classic round-robin-database compromise;
* :meth:`series` answers point-in-time queries for one labeled sample,
  and :meth:`as_dict` feeds the ``/history`` HTTP route.

The store never touches the hot path: recording cost is proportional to
the number of metric children, and cadence is the caller's (the
``nitrosketch profile --serve`` loop records around once a second; tests
record explicitly).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["HistoryStore", "sample_key"]


def sample_key(metric: str, labels: Dict[str, str]) -> str:
    """Canonical flat key for one labeled sample: ``name{k=v,...}``."""
    if not labels:
        return metric
    body = ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels))
    return "%s{%s}" % (metric, body)


class HistoryStore:
    """Bounded, downsampling ring of registry snapshot samples."""

    def __init__(
        self,
        capacity: int = 512,
        clock=time.time,
    ) -> None:
        if capacity < 4:
            raise ValueError("capacity must be >= 4, got %d" % capacity)
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        #: (timestamp, {flat_key: float}) samples, oldest first.
        self._samples: List[Tuple[float, Dict[str, float]]] = []
        #: Admit every ``stride``-th record; doubles on each compaction.
        self.stride = 1
        self._record_calls = 0
        self._compactions = 0

    # -- writing ------------------------------------------------------------

    @staticmethod
    def _flatten(snapshot: Dict) -> Dict[str, float]:
        """Scalar surface of a ``snapshot()`` dict (see module docstring)."""
        values: Dict[str, float] = {}
        for metric, family in snapshot.get("metrics", {}).items():
            kind = family.get("type")
            for sample in family.get("samples", ()):
                labels = sample.get("labels", {})
                if kind == "histogram":
                    values[sample_key(metric + "_count", labels)] = float(
                        sample.get("count", 0)
                    )
                    total = sample.get("sum", 0.0)
                    if isinstance(total, (int, float)):
                        values[sample_key(metric + "_sum", labels)] = float(total)
                else:
                    value = sample.get("value")
                    if isinstance(value, (int, float)):
                        values[sample_key(metric, labels)] = float(value)
        return values

    def record(self, snapshot: Dict, timestamp: Optional[float] = None) -> bool:
        """Offer one snapshot; returns True when a sample was admitted.

        ``snapshot`` is the dict produced by
        :func:`repro.telemetry.exposition.snapshot` (or
        ``Telemetry.snapshot()``).
        """
        with self._lock:
            admit = self._record_calls % self.stride == 0
            self._record_calls += 1
            if not admit:
                return False
            stamp = self._clock() if timestamp is None else float(timestamp)
            self._samples.append((stamp, self._flatten(snapshot)))
            if len(self._samples) >= self.capacity:
                # Keep every second sample; the newest always survives.
                kept = self._samples[::2]
                if kept[-1] is not self._samples[-1]:
                    kept.append(self._samples[-1])
                self._samples = kept
                self.stride *= 2
                self._compactions += 1
            return True

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def compactions(self) -> int:
        return self._compactions

    @property
    def record_calls(self) -> int:
        return self._record_calls

    def keys(self) -> List[str]:
        """Every flat sample key present anywhere in the history."""
        seen: Dict[str, None] = {}
        with self._lock:
            for _, values in self._samples:
                for key in values:
                    seen.setdefault(key, None)
        return sorted(seen)

    def series(self, metric: str, **labels) -> List[Tuple[float, float]]:
        """``[(timestamp, value), ...]`` for one labeled sample, oldest first.

        ``metric`` may be the bare family name (label-less samples) or
        be paired with keyword labels; histogram families are addressed
        as ``<name>_count`` / ``<name>_sum``.
        """
        key = sample_key(metric, {k: str(v) for k, v in labels.items()})
        out: List[Tuple[float, float]] = []
        with self._lock:
            for stamp, values in self._samples:
                if key in values:
                    out.append((stamp, values[key]))
        return out

    def window(
        self,
        metric: str,
        since_seconds: float,
        now: Optional[float] = None,
        **labels,
    ) -> List[Tuple[float, float]]:
        """Samples of one labeled series in the trailing time range.

        Returns ``[(timestamp, value), ...]`` (oldest first) for samples
        with ``now - since_seconds <= timestamp <= now``.  ``now``
        defaults to the newest recorded timestamp, so a paused store
        still answers "the last N seconds of the run" -- the reading the
        alert plane's for-duration and burn-rate rules need.  The result
        honours whatever downsampling stride the ring has reached: after
        compactions the window simply contains geometrically fewer
        points, never interpolated ones.
        """
        if since_seconds < 0:
            raise ValueError("since_seconds must be >= 0, got %r" % (since_seconds,))
        key = sample_key(metric, {k: str(v) for k, v in labels.items()})
        with self._lock:
            if not self._samples:
                return []
            anchor = self._samples[-1][0] if now is None else float(now)
            cutoff = anchor - float(since_seconds)
            return [
                (stamp, values[key])
                for stamp, values in self._samples
                if key in values and cutoff <= stamp <= anchor
            ]

    def as_dict(self, metric: Optional[str] = None) -> Dict:
        """JSON-able dump for the ``/history`` route.

        With ``metric``, only flat keys whose family name matches are
        included (exact name or ``name{...}`` / ``name_count`` forms).
        """
        with self._lock:
            samples = [
                {
                    "time": stamp,
                    "values": {
                        key: value
                        for key, value in values.items()
                        if metric is None or _matches(key, metric)
                    },
                }
                for stamp, values in self._samples
            ]
        return {
            "capacity": self.capacity,
            "stride": self.stride,
            "compactions": self._compactions,
            "record_calls": self._record_calls,
            "samples": samples,
        }

    def clear(self) -> None:
        with self._lock:
            self._samples = []
            self.stride = 1
            self._record_calls = 0
            self._compactions = 0


def _matches(flat_key: str, metric: str) -> bool:
    name = flat_key.split("{", 1)[0]
    return name == metric or name in (metric + "_count", metric + "_sum") or \
        name.startswith(metric)
