"""Pipeline-wide tracing: spans that cross process boundaries.

The event :class:`~repro.telemetry.tracer.Tracer` answers "what
happened"; spans answer "where did the time go, and inside what".  A
:class:`Span` is a named, timed interval with a trace id (one per
logical operation -- here, one per parallel-run epoch), a span id, and
an optional parent span id, which is exactly the OpenTelemetry-style
data model every tracing backend speaks.

The multi-core data plane makes this interesting: a single epoch's work
is spread over the parent (spawn, frame await, CRC check, merge, task
evaluation) and ``N`` worker processes (shard ingest, frame publish).
Workers cannot share the parent's tracer, so propagation works the way
the NSKW epoch frames already do -- by value:

* the parent derives one **deterministic** trace id per (run, epoch)
  with :func:`make_trace_id` and hands the run context to each worker
  inside its ``WorkerSpec``;
* a worker times its per-epoch stages locally (plain dicts, no shared
  state) and ships them in the ``spans`` list of its ``EpochFrame``
  metadata -- the NSKW v2 header grew a ``trace`` block for this;
* the parent rebuilds :class:`Span` objects from the frame metadata and
  records them into its own :class:`SpanTracer`, so ``/spans`` serves
  one coherent per-epoch tree spanning ingest -> mailbox publish -> CRC
  check -> merge -> task evaluation.

Determinism matters for crash recovery: span ids are pure functions of
(trace id, name, worker, epoch), so a respawned worker re-publishing an
epoch produces the *same* ids as its dead predecessor -- the re-ingested
epoch lands in the same tree instead of forking a new trace.

Timestamps are wall-clock (``time.time``) so spans from different
processes order correctly; durations are measured with
``time.perf_counter`` within each process, so they do not suffer
wall-clock steps.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "SpanTracer",
    "ActiveSpan",
    "make_trace_id",
    "make_span_id",
    "build_trace_tree",
    "render_span_tree",
    "parse_spans_jsonl",
]


def _digest(prefix: bytes, parts) -> str:
    """16-hex-char stable id from ``parts`` (blake2b, 8 bytes)."""
    payload = prefix + b"\x00".join(str(part).encode("utf-8") for part in parts)
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def make_trace_id(*parts) -> str:
    """A deterministic 16-hex trace id from identifying parts.

    The parallel engine calls this with (strategy, workers, rss_seed,
    packet count, epoch), so a crash-recovery rerun of the same epoch
    reproduces the same id -- the property the recovery tests pin.
    """
    return _digest(b"trace:", parts)


def make_span_id(trace_id: str, name: str, *parts) -> str:
    """A deterministic 16-hex span id scoped to one trace."""
    return _digest(b"span:", (trace_id, name) + parts)


@dataclass
class Span:
    """One named, timed interval inside a trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    #: Wall-clock start (``time.time``), comparable across processes.
    start: float
    #: Seconds, measured with a monotonic clock inside one process.
    duration: float
    fields: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=(None if data.get("parent_id") is None else str(data["parent_id"])),
            name=str(data["name"]),
            start=float(data["start"]),
            duration=float(data["duration"]),
            fields=dict(data.get("fields", {})),
        )


class ActiveSpan:
    """Context manager timing one span into a :class:`SpanTracer`.

    Usable nested: ``child(name)`` starts a sub-span with this span as
    parent, and ``span_id`` is available immediately (before exit) so
    it can be handed to workers as their parent id.
    """

    __slots__ = ("_tracer", "span", "_t0")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._t0 = 0.0

    @property
    def span_id(self) -> str:
        return self.span.span_id

    @property
    def trace_id(self) -> str:
        return self.span.trace_id

    def child(self, name: str, span_id: Optional[str] = None, **fields) -> "ActiveSpan":
        return self._tracer.start_span(
            name,
            trace_id=self.span.trace_id,
            parent_id=self.span.span_id,
            span_id=span_id,
            **fields,
        )

    def annotate(self, **fields) -> None:
        self.span.fields.update(fields)

    def __enter__(self) -> "ActiveSpan":
        self._t0 = time.perf_counter()
        self.span.start = self._tracer._wall_clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.span.fields.setdefault("error", exc_type.__name__)
        self._tracer.record(self.span)


class _NullActiveSpan:
    """Do-nothing stand-in with the :class:`ActiveSpan` surface."""

    __slots__ = ()
    span_id = ""
    trace_id = ""

    def child(self, name: str, span_id: Optional[str] = None, **fields) -> "_NullActiveSpan":
        return self

    def annotate(self, **fields) -> None:
        pass

    def __enter__(self) -> "_NullActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_ACTIVE_SPAN = _NullActiveSpan()


class SpanTracer:
    """Bounded in-memory span recorder (the span sibling of ``Tracer``).

    Spans land here two ways: locally via :meth:`start_span` (a timing
    context manager), or imported from another process's serialized
    form via :meth:`record` / :meth:`record_dicts` -- the parallel
    engine's frame-metadata hand-off.
    """

    def __init__(self, capacity: int = 4096, wall_clock=time.time) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        self.capacity = capacity
        self._wall_clock = wall_clock
        self._ring: "deque[Span]" = deque(maxlen=capacity)
        self._recorded = 0

    # -- recording ----------------------------------------------------------

    def start_span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        **fields,
    ) -> ActiveSpan:
        """Open a timing context; the span is recorded on exit.

        Without an explicit ``trace_id`` a fresh root trace is derived
        from the tracer's running count (unique within this process).
        """
        if trace_id is None:
            trace_id = make_trace_id("local", id(self), self._recorded, name)
        if span_id is None:
            span_id = make_span_id(trace_id, name, self._recorded)
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start=0.0,
            duration=0.0,
            fields=dict(fields),
        )
        return ActiveSpan(self, span)

    def record(self, span: Span) -> None:
        """Append one finished span (local or imported)."""
        self._recorded += 1
        self._ring.append(span)

    def record_dicts(self, dicts: Iterable[Dict[str, object]]) -> int:
        """Import spans serialized by another process; returns how many."""
        count = 0
        for data in dicts:
            self.record(Span.from_dict(data))
            count += 1
        return count

    # -- introspection ------------------------------------------------------

    @property
    def recorded(self) -> int:
        return self._recorded

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound."""
        return self._recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def spans(self, trace_id: Optional[str] = None, name: Optional[str] = None) -> List[Span]:
        out = list(self._ring)
        if trace_id is not None:
            out = [span for span in out if span.trace_id == trace_id]
        if name is not None:
            out = [span for span in out if span.name == name]
        return out

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in the ring, in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self._ring:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        self._ring.clear()
        self._recorded = 0

    # -- JSONL round trip ---------------------------------------------------

    def to_jsonl(self) -> str:
        out = io.StringIO()
        for span in self._ring:
            out.write(json.dumps(span.as_dict(), sort_keys=True))
            out.write("\n")
        return out.getvalue()

    def write_jsonl(self, path: str) -> int:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return len(self._ring)


def parse_spans_jsonl(text: str) -> List[Span]:
    """Parse spans from JSONL text (inverse of :meth:`SpanTracer.to_jsonl`)."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# ---------------------------------------------------------------------------
# Trace assembly and rendering.
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One span plus its children, ordered by wall-clock start."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)


def build_trace_tree(spans: Iterable[Span]) -> List[SpanNode]:
    """Nest spans by parent id; returns the roots, start-ordered.

    A span naming a parent that is absent from ``spans`` (e.g. evicted
    from the ring) becomes a root rather than being dropped, so partial
    traces still render.  Duplicate span ids (a crash-recovery worker
    re-publishing an epoch) keep the *last* occurrence -- the one whose
    ingest actually fed the merge.
    """
    by_id: Dict[str, SpanNode] = {}
    ordered: List[Span] = []
    for span in spans:
        node = SpanNode(span)
        if span.span_id not in by_id:
            ordered.append(span)
        by_id[span.span_id] = node
    roots: List[SpanNode] = []
    for span in ordered:
        node = by_id[span.span_id]
        parent = by_id.get(span.parent_id) if span.parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    def sort(nodes: List[SpanNode]) -> None:
        nodes.sort(key=lambda n: (n.span.start, n.span.name))
        for node in nodes:
            sort(node.children)
    sort(roots)
    return roots


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return "%.2fs" % seconds
    if seconds >= 1e-3:
        return "%.2fms" % (seconds * 1e3)
    return "%.0fµs" % (seconds * 1e6)


def render_span_tree(spans: Iterable[Span], indent: str = "  ") -> str:
    """ASCII tree of one or more traces, for ``nitrosketch trace``."""
    lines: List[str] = []
    roots = build_trace_tree(spans)
    trace_seen: Dict[str, None] = {}

    def walk(node: SpanNode, depth: int) -> None:
        span = node.span
        extras = ""
        interesting = {
            key: value
            for key, value in span.fields.items()
            if key in ("worker", "epoch", "packets", "task", "shard")
        }
        if interesting:
            extras = "  " + " ".join(
                "%s=%s" % (key, value) for key, value in sorted(interesting.items())
            )
        lines.append(
            "%s%-*s %10s%s"
            % (indent * depth, max(36 - depth * len(indent), 8), span.name,
               _format_duration(span.duration), extras)
        )
        for child in node.children:
            walk(child, depth + 1)

    for node in roots:
        if node.span.trace_id not in trace_seen:
            trace_seen[node.span.trace_id] = None
            lines.append("trace %s" % node.span.trace_id)
        walk(node, 1)
    return "\n".join(lines) + ("\n" if lines else "")
