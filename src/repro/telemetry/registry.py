"""Labeled metric families: counters, gauges, log-bucketed histograms.

The registry follows the Prometheus data model (the de-facto exposition
standard for the software switches the paper targets -- OVS, VPP and
BESS all ship Prometheus-style counters):

* a **metric family** has a name, a help string and a fixed set of label
  names;
* a **child** is one (label values) instantiation of a family, holding
  the actual value(s);
* counters only go up, gauges go anywhere, histograms accumulate
  observations into cumulative ``le`` buckets plus a sum and a count.

Histograms default to *log-spaced* buckets because every distribution we
time (per-stage pipeline latencies, task evaluation times, geometric gap
lengths) spans orders of magnitude; linear buckets would waste most of
their resolution.

Everything is plain Python with dict lookups on the hot path -- fast
enough for per-batch instrumentation, and the accuracy-only code paths
never reach it at all (they run against
:data:`repro.telemetry.NULL_TELEMETRY`).
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(start: float, stop: float, factor: float = 4.0) -> List[float]:
    """Geometric bucket boundaries ``[start, start*factor, ...]`` up to ``stop``.

    The returned list always ends at or beyond ``stop`` so the last
    finite bucket covers it (the implicit ``+Inf`` bucket is added by the
    histogram itself).
    """
    if start <= 0:
        raise ValueError("start must be positive, got %r" % (start,))
    if factor <= 1.0:
        raise ValueError("factor must be > 1, got %r" % (factor,))
    buckets = [start]
    while buckets[-1] < stop:
        buckets.append(buckets[-1] * factor)
    return buckets


#: Default histogram buckets for wall-clock durations in seconds:
#: ~60 ns up to ~4 s in powers of four.
DEFAULT_TIME_BUCKETS: List[float] = log_buckets(2.0**-24, 4.0)

#: Default buckets for dimensionless size-ish quantities (gap lengths,
#: batch sizes, detected-flow counts): 1 up to ~1M in powers of four.
DEFAULT_SIZE_BUCKETS: List[float] = log_buckets(1.0, 2.0**20)


class CounterChild:
    """One labeled counter instance (monotonically non-decreasing)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase, got %r" % (amount,))
        self.value += amount


class GaugeChild:
    """One labeled gauge instance (free-moving value)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramChild:
    """One labeled histogram instance: cumulative buckets + sum + count."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = buckets  # shared, ascending, no +Inf
        self.counts = [0] * (len(buckets) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-``le`` counts (ends with +Inf)."""
        total = 0
        out = []
        for count in self.counts:
            total += count
            out.append(total)
        return out


_CHILD_TYPES = {"counter": CounterChild, "gauge": GaugeChild, "histogram": HistogramChild}


class MetricFamily:
    """A named metric with a fixed label schema and lazily-created children."""

    def __init__(
        self,
        kind: str,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _CHILD_TYPES:
            raise ValueError("unknown metric kind %r" % (kind,))
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % (name,))
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError("invalid label name %r" % (label,))
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        if kind == "histogram":
            bounds = list(buckets) if buckets is not None else list(DEFAULT_TIME_BUCKETS)
            if bounds != sorted(bounds):
                raise ValueError("histogram buckets must be ascending")
            self.buckets: Optional[Tuple[float, ...]] = tuple(bounds)
        else:
            if buckets is not None:
                raise ValueError("buckets only apply to histograms")
            self.buckets = None
        self._children: "OrderedDict[Tuple[str, ...], object]" = OrderedDict()

    def labels(self, *values, **kwvalues):
        """Return (creating if needed) the child for one label-value tuple.

        Accepts positional values in ``labelnames`` order or keyword
        values; mixing is an error.
        """
        if values and kwvalues:
            raise ValueError("pass label values positionally or by keyword, not both")
        if kwvalues:
            if set(kwvalues) != set(self.labelnames):
                raise ValueError(
                    "metric %s expects labels %r, got %r"
                    % (self.name, self.labelnames, tuple(sorted(kwvalues)))
                )
            values = tuple(str(kwvalues[name]) for name in self.labelnames)
        else:
            if len(values) != len(self.labelnames):
                raise ValueError(
                    "metric %s expects %d label values, got %d"
                    % (self.name, len(self.labelnames), len(values))
                )
            values = tuple(str(value) for value in values)
        child = self._children.get(values)
        if child is None:
            if self.kind == "histogram":
                child = HistogramChild(self.buckets)
            else:
                child = _CHILD_TYPES[self.kind]()
            self._children[values] = child
        return child

    # Convenience for label-less families: operate on the () child.

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """Yield ``(label_values, child)`` in creation order."""
        return self._children.items()

    def label_dict(self, values: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, values))


class MetricsRegistry:
    """Holds every metric family; the unit of exposition.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: repeated
    calls with the same name return the same family (and raise if the
    kind or label schema disagrees, which catches instrumentation typos
    early).
    """

    def __init__(self) -> None:
        self._families: "OrderedDict[str, MetricFamily]" = OrderedDict()
        # Re-entrant: a writer holding the lock for a multi-metric
        # atomic block still creates families (which re-acquires), and
        # exposition takes it to render a consistent view.
        self._lock = threading.RLock()

    @property
    def lock(self) -> "threading.RLock":
        """The registry-wide mutation/exposition lock.

        Writers (``Telemetry.count``/``gauge``/``observe``) mutate
        children under it, multi-metric updates group under it via
        :meth:`Telemetry.atomic`, and :func:`~repro.telemetry.exposition.snapshot`
        / :func:`~repro.telemetry.exposition.render_prometheus` hold it
        for the duration of a render -- a scrape can no longer observe
        one counter of a sibling pair updated and the other not.
        """
        return self._lock

    def _get_or_create(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    "metric %s already registered as a %s" % (name, family.kind)
                )
            if family.labelnames != tuple(labelnames):
                raise ValueError(
                    "metric %s already registered with labels %r"
                    % (name, family.labelnames)
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(kind, name, help, labelnames, buckets)
                self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._get_or_create("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._get_or_create("gauge", name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._get_or_create("histogram", name, help, labelnames, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __iter__(self):
        return iter(self._families.values())

    def __len__(self) -> int:
        return len(self._families)

    def reset(self) -> None:
        """Drop every family (a fresh registry without rebinding refs)."""
        self._families.clear()
