"""Primitive fault injectors.

Every injector is deterministic (seeded) so chaos runs are reproducible
bit for bit -- a failing scenario can be replayed under a debugger with
the same bytes flipped.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from repro.hashing.prng import SplitMix64


def truncate_file(path: str, fraction: float = 0.5) -> int:
    """Truncate a file to ``fraction`` of its size (a torn write).

    Returns the new size.  ``fraction`` must be in [0, 1); the CRC at
    the frame tail is always lost, so any validated reader must reject
    the result.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1), got %r" % (fraction,))
    size = os.path.getsize(path)
    keep = int(size * fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def corrupt_file(path: str, count: int = 8, seed: int = 0) -> List[int]:
    """Flip ``count`` bytes at deterministic pseudo-random offsets.

    Models bit rot / a bad sector.  Returns the corrupted offsets.  The
    file keeps its length, so only content validation (CRC) can catch
    this.
    """
    if count < 1:
        raise ValueError("count must be >= 1, got %d" % count)
    size = os.path.getsize(path)
    if size == 0:
        return []
    rng = SplitMix64(seed ^ 0xFA017)
    offsets = sorted({rng.next_u64() % size for _ in range(count)})
    with open(path, "r+b") as handle:
        for offset in offsets:
            handle.seek(offset)
            original = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([original[0] ^ 0xFF]))
    return offsets


def flip_bytes(data: bytes, count: int = 8, seed: int = 0) -> bytes:
    """In-memory :func:`corrupt_file`: flip ``count`` bytes of ``data``.

    Same deterministic offset stream as :func:`corrupt_file` (so a
    failing run replays with the same bytes flipped), but operating on a
    payload before it hits a wire or a mailbox -- the fault model for
    corruption *in transit* rather than at rest.  Length is preserved;
    only content validation (CRC) can catch the damage.
    """
    if count < 1:
        raise ValueError("count must be >= 1, got %d" % count)
    if len(data) == 0:
        return data
    rng = SplitMix64(seed ^ 0xFA017)
    offsets = sorted({rng.next_u64() % len(data) for _ in range(count)})
    corrupted = bytearray(data)
    for offset in offsets:
        corrupted[offset] ^= 0xFF
    return bytes(corrupted)


@dataclass(frozen=True)
class WorkerCrashPlan:
    """Deterministic one-shot crash for a parallel-ingest worker.

    The targeted worker hard-exits (``os._exit``) after ingesting
    ``fraction`` of the named epoch's batches -- mid-epoch, before the
    epoch frame is published -- modelling an OOM kill or segfault on one
    RSS queue.  The engine's recovery path must respawn the worker and
    reproduce the no-crash result exactly.
    """

    worker: int
    epoch: int = 0
    fraction: float = 0.5
    exit_code: int = 17

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError("worker must be >= 0, got %d" % self.worker)
        if self.epoch < 0:
            raise ValueError("epoch must be >= 0, got %d" % self.epoch)
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1], got %r" % (self.fraction,))
        if self.exit_code == 0:
            raise ValueError("exit_code 0 would read as a clean exit")


@dataclass(frozen=True)
class FrameCorruptionPlan:
    """Deterministic corruption of one worker's published epoch frame.

    The targeted worker runs :func:`flip_bytes` over the named epoch's
    serialized frame before publishing it -- bit rot on the hand-off
    path.  The consumer must reject the frame via its CRC; silently
    merging a corrupt shard is the failure mode this plan exists to
    prove impossible.
    """

    worker: int
    epoch: int = 0
    count: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError("worker must be >= 0, got %d" % self.worker)
        if self.epoch < 0:
            raise ValueError("epoch must be >= 0, got %d" % self.epoch)
        if self.count < 1:
            raise ValueError("count must be >= 1, got %d" % self.count)


class LossyChannel:
    """An export channel that drops every ``drop_every``-th transfer.

    Models the control link losing epoch exports (the paper ships sketch
    state over 1 GbE every epoch; UDP-style export loses frames under
    congestion).  Delivered payloads are kept with their sequence
    numbers so a receiver can detect gaps.
    """

    def __init__(self, drop_every: int = 0, seed: int = 0) -> None:
        if drop_every < 0:
            raise ValueError("drop_every must be >= 0, got %d" % drop_every)
        self.drop_every = drop_every
        self.sent = 0
        self.dropped = 0
        #: (sequence, payload) pairs that made it across.
        self.delivered: List[tuple] = []

    def send(self, payload: bytes) -> bool:
        """Offer one export; returns True when it was delivered."""
        sequence = self.sent
        self.sent += 1
        if self.drop_every > 0 and sequence % self.drop_every == self.drop_every - 1:
            self.dropped += 1
            return False
        self.delivered.append((sequence, payload))
        return True

    def missing_sequences(self) -> List[int]:
        """Sequence numbers the receiver never saw (gap detection)."""
        received = {sequence for sequence, _ in self.delivered}
        return [s for s in range(self.sent) if s not in received]
