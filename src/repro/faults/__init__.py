"""Fault-injection harness for the crash-safety layer.

*An Evaluation of Software Sketches* (Friedman) argues that robustness
features have to be benchmarked, not assumed.  This package injects the
failures the checkpoint/restore machinery claims to survive and verifies
the claims end to end:

* :mod:`repro.faults.inject` -- the primitive faults: truncating or
  corrupting checkpoint bytes on disk, and a lossy export channel that
  drops epoch exports;
* :mod:`repro.faults.chaos` -- scripted inject -> recover -> audit
  scenarios (kill-daemon-mid-epoch, truncated checkpoint, corrupted
  checkpoint, dropped exports), each returning a pass/fail verdict; the
  ``nitrosketch chaos`` CLI subcommand runs them and exits non-zero on
  any failure.
"""

from repro.faults.inject import (
    FrameCorruptionPlan,
    LossyChannel,
    WorkerCrashPlan,
    corrupt_file,
    flip_bytes,
    truncate_file,
)
from repro.faults.chaos import ChaosResult, ChaosRunner, run_chaos

__all__ = [
    "truncate_file",
    "corrupt_file",
    "flip_bytes",
    "WorkerCrashPlan",
    "FrameCorruptionPlan",
    "LossyChannel",
    "ChaosResult",
    "ChaosRunner",
    "run_chaos",
]
