"""Scripted chaos scenarios: inject -> recover -> audit.

Each scenario builds the same monitor the audited demo uses (an
AlwaysCorrect Nitro Count Sketch over a CAIDA-like trace), injects one
fault class, drives recovery through the real
:class:`~repro.control.checkpoint.CheckpointManager` machinery, and then
*proves* the recovery with the PR-3 accuracy auditors:

* ``kill_recover_audit`` -- kill the daemon mid-epoch (between
  checkpoints), restore the newest checkpoint into a fresh daemon,
  verify the restored monitor is byte-identical to a clean replay of
  the surviving prefix, resume ingest, and check the Theorem 2 bound
  via :class:`~repro.telemetry.audit.GuaranteeMonitor` on both the
  surviving mass and the full resumed stream;
* ``truncate_fallback`` -- truncate the newest checkpoint (torn write):
  the CRC must reject it and restore must fall back to the previous
  rotation byte-exactly;
* ``corrupt_fallback`` -- flip bytes inside the newest checkpoint (bit
  rot): same contract, caught purely by CRC since the length is intact;
* ``drop_exports`` -- ship per-epoch exports over a lossy channel:
  every delivered frame must decode, and every dropped frame must be
  detectable as a sequence gap;
* ``window_corruption`` -- zero one epoch sketch inside a sliding
  window's ring: the merged window must still satisfy the Theorem 2
  bound against the *uncorrupted* epochs' ground truth (blast radius =
  one epoch), while the identical corruption applied to an unwindowed
  monitor -- whose single sketch holds every epoch's mass -- must trip
  the violation;
* ``client_flood`` -- many concurrent wire clients hammer one tenant of
  a live :class:`~repro.service.MonitoringService` whose queue is tiny
  and whose overflow policy is ``drop``: the service must stay
  responsive throughout and account for every offered frame as exactly
  accepted-or-dropped (``packets_ingested == accepted * frame_size``,
  nothing silently lost);
* ``slow_consumer`` -- one producer outruns a tiny queue under the
  ``wait`` policy: backpressure must park the reader instead of
  shedding, so after the sync barrier *zero* batches were dropped and
  the tenant's sketch is byte-identical to an in-process replay of the
  same frames -- full fidelity, just slower.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.control.checkpoint import CheckpointManager
from repro.control.export import deserialize_monitor, serialize_monitor
from repro.core.config import NitroConfig, NitroMode
from repro.core.nitro import NitroSketch
from repro.faults.inject import LossyChannel, corrupt_file, truncate_file
from repro.sketches.countsketch import CountSketch
from repro.switchsim.daemon import MeasurementDaemon
from repro.telemetry import Telemetry
from repro.telemetry.audit import GuaranteeMonitor, ShadowAuditor
from repro.traffic.replay import Replayer
from repro.traffic.traces import caida_like


@dataclass
class ChaosResult:
    """One scenario's verdict."""

    name: str
    passed: bool
    detail: str
    metrics: Dict[str, float] = field(default_factory=dict)


class ChaosRunner:
    """Runs the chaos scenarios against one working directory.

    Parameters
    ----------
    packets / seed:
        Trace size and seed (every scenario is deterministic in them).
    directory:
        Where checkpoint files are written; a temp dir when ``None``.
    batch_size / checkpoint_interval:
        Daemon batch granularity and checkpoint cadence (batches).
    """

    def __init__(
        self,
        packets: int = 60_000,
        seed: int = 7,
        directory: Optional[str] = None,
        batch_size: int = 512,
        checkpoint_interval: int = 8,
    ) -> None:
        self.packets = packets
        self.seed = seed
        self.directory = directory or tempfile.mkdtemp(prefix="nitro-chaos-")
        self.batch_size = batch_size
        self.checkpoint_interval = checkpoint_interval
        self.trace = caida_like(
            packets, n_flows=max(200, packets // 20), seed=seed
        )
        self.batches = list(
            Replayer(self.trace, batch_size=batch_size).batches()
        )

    # -- building blocks ------------------------------------------------------

    def _build_monitor(self) -> NitroSketch:
        # The audited-demo configuration: loose epsilon so AlwaysCorrect
        # converges within a smoke-sized trace and the Theorem 2 bound is
        # comfortably checkable.
        config = NitroConfig(
            probability=0.1,
            epsilon=0.5,
            mode=NitroMode.ALWAYS_CORRECT,
            convergence_check_period=1000,
            top_k=100,
            seed=self.seed,
        )
        return NitroSketch(CountSketch(5, 4096, self.seed), config)

    def _audit(self, monitor, packet_count: int):
        """Theorem-2 check of ``monitor`` against the trace's first
        ``packet_count`` packets (the surviving mass)."""
        return self._audit_keys(monitor, self.trace.keys[:packet_count])

    def _audit_keys(self, monitor, keys):
        """Theorem-2 check of ``monitor`` against exactly ``keys``."""
        auditor = ShadowAuditor(capacity=256, seed=self.seed)
        guarantee = GuaranteeMonitor(auditor, monitor)
        auditor.observe_batch(keys)
        return guarantee.check()

    # -- scenarios ------------------------------------------------------------

    def kill_recover_audit(self) -> ChaosResult:
        """Kill mid-epoch, restore, verify byte-exactness + the bound."""
        name = "kill_recover_audit"
        telemetry = Telemetry()
        manager = CheckpointManager(
            os.path.join(self.directory, "kill"), keep=3, telemetry=telemetry
        )
        daemon = MeasurementDaemon(
            self._build_monitor(),
            checkpoints=manager,
            checkpoint_interval=self.checkpoint_interval,
            telemetry=telemetry,
        )
        # Kill between checkpoints: mid-way through the interval after at
        # least one checkpoint has been written.
        kill_at = (
            (len(self.batches) * 2 // 3) // self.checkpoint_interval
        ) * self.checkpoint_interval + self.checkpoint_interval // 2
        if kill_at >= len(self.batches) or kill_at < self.checkpoint_interval:
            return ChaosResult(name, False, "trace too small to stage a kill")
        for batch in self.batches[:kill_at]:
            daemon.ingest(batch)
        del daemon  # the crash: all in-memory state is gone

        recovered = MeasurementDaemon(
            self._build_monitor(),
            checkpoints=manager,
            checkpoint_interval=self.checkpoint_interval,
            telemetry=telemetry,
        )
        if not recovered.restore_latest():
            return ChaosResult(name, False, "no checkpoint found after kill")
        surviving_batches = recovered.batches_ingested
        surviving_packets = recovered.packets_offered

        # Byte-exactness: a clean replay of the surviving prefix must
        # serialize to the same bytes as the restored monitor.
        shadow = MeasurementDaemon(self._build_monitor())
        for batch in self.batches[:surviving_batches]:
            shadow.ingest(batch)
        if serialize_monitor(shadow.monitor) != serialize_monitor(recovered.monitor):
            return ChaosResult(
                name, False, "restored monitor diverges from clean replay"
            )

        # The surviving mass must still satisfy the Theorem 2 bound.
        report = self._audit(recovered.monitor, surviving_packets)
        if report.violated:
            return ChaosResult(
                name,
                False,
                "bound violated on surviving mass (observed %.1f > bound %.1f)"
                % (report.observed_max_error, report.bound),
            )
        surviving_ratio = report.ratio

        # Resume from the checkpoint and finish the trace; the bound must
        # hold for the full resumed stream too.
        for batch in self.batches[surviving_batches:]:
            recovered.ingest(batch)
        final = self._audit(recovered.monitor, len(self.trace))
        if final.violated:
            return ChaosResult(
                name,
                False,
                "bound violated after resumed ingest (observed %.1f > bound %.1f)"
                % (final.observed_max_error, final.bound),
            )
        return ChaosResult(
            name,
            True,
            "killed at batch %d, restored %d batches (%d packets); error/bound "
            "%.3f surviving, %.3f final"
            % (
                kill_at,
                surviving_batches,
                surviving_packets,
                surviving_ratio,
                final.ratio,
            ),
            metrics={
                "surviving_packets": float(surviving_packets),
                "surviving_ratio": float(surviving_ratio),
                "final_ratio": float(final.ratio),
            },
        )

    def _fallback_scenario(self, name: str, damage) -> ChaosResult:
        """Write two checkpoints, damage the newest, require fallback."""
        telemetry = Telemetry()
        manager = CheckpointManager(
            os.path.join(self.directory, name), keep=3, telemetry=telemetry
        )
        monitor = self._build_monitor()
        split = len(self.batches) // 2
        for batch in self.batches[:split]:
            monitor.update_batch(batch.keys)
        good_blob = serialize_monitor(monitor)
        manager.save(monitor, meta={"batches": split})
        for batch in self.batches[split:]:
            monitor.update_batch(batch.keys)
        newest = manager.save(monitor, meta={"batches": len(self.batches)})

        damage(newest.path)
        try:
            manager.load(newest.path)
            return ChaosResult(name, False, "damaged checkpoint was not rejected")
        except ValueError:
            pass  # CRC/validation caught it, as required

        restored = manager.restore_latest()
        if restored is None:
            return ChaosResult(name, False, "no fallback checkpoint restored")
        if restored.sequence != newest.sequence - 1:
            return ChaosResult(
                name,
                False,
                "expected fallback to sequence %d, got %d"
                % (newest.sequence - 1, restored.sequence),
            )
        if serialize_monitor(restored.monitor) != good_blob:
            return ChaosResult(name, False, "fallback checkpoint not byte-exact")
        from repro.telemetry.health import sample_value

        failures = sample_value(
            telemetry.snapshot(), "checkpoint_restore_failures_total"
        ) or 0
        return ChaosResult(
            name,
            True,
            "damaged checkpoint rejected (%d restore failure(s) recorded), "
            "fell back to sequence %d byte-exactly" % (failures, restored.sequence),
            metrics={"restore_failures": float(failures)},
        )

    def truncate_fallback(self) -> ChaosResult:
        """Torn write: newest checkpoint truncated, CRC must reject it."""
        return self._fallback_scenario(
            "truncate_fallback", lambda path: truncate_file(path, fraction=0.6)
        )

    def corrupt_fallback(self) -> ChaosResult:
        """Bit rot: bytes flipped in place, only the CRC can catch it."""
        return self._fallback_scenario(
            "corrupt_fallback",
            lambda path: corrupt_file(path, count=8, seed=self.seed),
        )

    def drop_exports(self) -> ChaosResult:
        """Lossy epoch exports: survivors decode, gaps are detectable."""
        name = "drop_exports"
        channel = LossyChannel(drop_every=3)
        monitor = self._build_monitor()
        epoch_size = max(len(self.batches) // 6, 1)
        for start in range(0, len(self.batches), epoch_size):
            for batch in self.batches[start : start + epoch_size]:
                monitor.update_batch(batch.keys)
            channel.send(serialize_monitor(monitor))
        if channel.dropped == 0:
            return ChaosResult(name, False, "channel dropped nothing to test")
        for sequence, payload in channel.delivered:
            decoded = deserialize_monitor(payload)
            if not isinstance(decoded, NitroSketch):
                return ChaosResult(
                    name, False, "export %d decoded to wrong type" % sequence
                )
        missing = channel.missing_sequences()
        if len(missing) != channel.dropped:
            return ChaosResult(
                name,
                False,
                "gap detection missed drops (%d gaps vs %d dropped)"
                % (len(missing), channel.dropped),
            )
        return ChaosResult(
            name,
            True,
            "%d/%d exports dropped, every survivor decoded, gaps %s detected"
            % (channel.dropped, channel.sent, missing),
            metrics={"dropped": float(channel.dropped), "sent": float(channel.sent)},
        )

    def window_corruption(self) -> ChaosResult:
        """Corrupt one ring epoch: the window degrades, a monolith dies.

        Zeroing one epoch sketch inside the ring loses exactly that
        epoch's contribution -- the merged window must still satisfy
        the Theorem 2 bound against the uncorrupted epochs' ground
        truth.  The identical corruption (one sketch's counter grid
        zeroed) on an unwindowed monitor wipes *every* epoch's mass and
        must trip the GuaranteeMonitor violation.
        """
        name = "window_corruption"
        from repro.control.windows import SlidingWindowMonitor

        epochs = 4
        epoch_packets = len(self.trace) // epochs
        if epoch_packets < 2000:
            return ChaosResult(name, False, "trace too small for %d epochs" % epochs)
        keys = self.trace.keys[: epochs * epoch_packets]
        window = SlidingWindowMonitor(
            self._build_monitor,
            window_epochs=epochs + 1,
            epoch_packets=epoch_packets,
        )
        window.update_batch(keys)
        ring = window.window_monitors()[:-1]
        if len(ring) != epochs:
            return ChaosResult(
                name, False, "ring holds %d epochs, expected %d" % (len(ring), epochs)
            )
        baseline = self._audit_keys(window.merged(), keys)
        if baseline.violated:
            return ChaosResult(
                name, False, "window bound violated before any corruption"
            )

        # The fault: one epoch's counter grid zeroed in place.
        corrupt_index = 1
        ring[corrupt_index].sketch.counters.fill(0.0)
        window.invalidate()
        surviving = np.concatenate(
            [
                keys[index * epoch_packets : (index + 1) * epoch_packets]
                for index in range(epochs)
                if index != corrupt_index
            ]
        )
        windowed = self._audit_keys(window.merged(), surviving)
        if windowed.violated:
            return ChaosResult(
                name,
                False,
                "window did not degrade gracefully: bound violated on the "
                "uncorrupted epochs (observed %.1f > bound %.1f)"
                % (windowed.observed_max_error, windowed.bound),
            )

        # Same corruption, no window: one sketch holds all the mass.
        monolith = self._build_monitor()
        monolith.update_batch(keys)
        monolith.sketch.counters.fill(0.0)
        unwindowed = self._audit_keys(monolith, surviving)
        if not unwindowed.violated:
            return ChaosResult(
                name,
                False,
                "unwindowed corruption went undetected (observed %.1f, "
                "bound %.1f)"
                % (unwindowed.observed_max_error, unwindowed.bound),
            )
        return ChaosResult(
            name,
            True,
            "epoch %d/%d zeroed: window error/bound %.3f on surviving epochs "
            "(%.3f pre-corruption), unwindowed corruption trips the violation"
            % (corrupt_index, epochs, windowed.ratio, baseline.ratio),
            metrics={
                "baseline_ratio": float(baseline.ratio),
                "windowed_ratio": float(windowed.ratio),
                "unwindowed_observed": float(unwindowed.observed_max_error),
            },
        )

    def client_flood(self) -> ChaosResult:
        """Concurrent clients flood a drop-policy tenant: survive + account.

        The interesting failure modes are silent loss (a frame neither
        ingested nor counted as dropped), corrupted accounting under
        concurrency, and the service wedging.  Drops themselves are
        *legal* here -- the scenario records how many the flood forced.
        """
        name = "client_flood"
        import threading

        from repro.service import IngestClient, MonitoringService, ServiceConfig

        frame_keys = 1000
        clients = 6
        frames_per_client = max(len(self.trace) // (clients * frame_keys), 4)
        config = ServiceConfig(
            seed=self.seed, queue_capacity=2, overflow="drop", epoch_batches=0
        )
        service = MonitoringService(config, http=False).start()
        errors: List[str] = []
        try:
            def flood(index: int) -> None:
                keys = self.trace.keys
                try:
                    with IngestClient("127.0.0.1", service.ingest_port) as client:
                        for frame in range(frames_per_client):
                            start = (
                                (index * frames_per_client + frame) * frame_keys
                            ) % max(len(keys) - frame_keys, 1)
                            client.ingest(
                                "flooded", keys[start : start + frame_keys]
                            )
                        # Responsiveness probe from inside the flood.
                        client.stats("flooded")
                except Exception as exc:
                    errors.append("client %d: %s" % (index, exc))

            threads = [
                threading.Thread(target=flood, args=(index,))
                for index in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            if errors or any(thread.is_alive() for thread in threads):
                return ChaosResult(
                    name, False, "flood clients failed: %s" % (errors or "hung")
                )
            # Let the drainer finish, then take the books.
            with IngestClient("127.0.0.1", service.ingest_port) as client:
                stats = client.sync("flooded")
            offered = clients * frames_per_client
            accepted = stats["batches_accepted"]
            dropped = stats["batches_dropped"]
            if accepted + dropped != offered:
                return ChaosResult(
                    name,
                    False,
                    "frames leaked: %d accepted + %d dropped != %d offered"
                    % (accepted, dropped, offered),
                )
            if stats["packets_ingested"] != accepted * frame_keys:
                return ChaosResult(
                    name,
                    False,
                    "accepted frames lost packets: %d ingested != %d * %d"
                    % (stats["packets_ingested"], accepted, frame_keys),
                )
            return ChaosResult(
                name,
                True,
                "%d clients x %d frames into a depth-%d queue: %d accepted, "
                "%d dropped-and-counted, zero silent loss, service responsive"
                % (clients, frames_per_client, config.queue_capacity,
                   accepted, dropped),
                metrics={
                    "offered": float(offered),
                    "accepted": float(accepted),
                    "dropped": float(dropped),
                },
            )
        finally:
            service.stop()

    def slow_consumer(self) -> ChaosResult:
        """A producer outruns the drain under ``wait``: no loss, ever.

        Backpressure must hold the reader instead of shedding: every
        frame eventually lands, and the tenant's sketch ends
        byte-identical to an in-process replay of the same frames.
        """
        name = "slow_consumer"
        from repro.service import IngestClient, MonitoringService, ServiceConfig
        from repro.service.records import batch_from_keys

        frame_keys = 500
        keys = self.trace.keys[: min(len(self.trace), 30_000)]
        frames = [
            keys[start : start + frame_keys]
            for start in range(0, len(keys), frame_keys)
        ]
        config = ServiceConfig(
            seed=self.seed, queue_capacity=2, overflow="wait", epoch_batches=0
        )
        service = MonitoringService(config, http=False).start()
        try:
            with IngestClient("127.0.0.1", service.ingest_port) as client:
                for frame in frames:
                    client.ingest("steady", frame)
                stats = client.sync("steady")
            if stats["batches_dropped"]:
                return ChaosResult(
                    name,
                    False,
                    "wait policy shed %d batches" % stats["batches_dropped"],
                )
            if stats["packets_ingested"] != len(keys):
                return ChaosResult(
                    name,
                    False,
                    "lost packets under backpressure: %d != %d"
                    % (stats["packets_ingested"], len(keys)),
                )
            live = serialize_monitor(
                service.tenants.get("steady").daemon.monitor
            )
            reference = MeasurementDaemon(config.build_monitor("steady"))
            for frame in frames:
                reference.ingest(batch_from_keys(frame))
            if live != serialize_monitor(reference.monitor):
                return ChaosResult(
                    name, False, "sketch diverged from in-process replay"
                )
            return ChaosResult(
                name,
                True,
                "%d frames through a depth-%d queue under backpressure: "
                "zero drops, byte-identical to in-process replay (%d packets)"
                % (len(frames), config.queue_capacity, len(keys)),
                metrics={
                    "frames": float(len(frames)),
                    "packets": float(len(keys)),
                },
            )
        finally:
            service.stop()

    # -- driver ---------------------------------------------------------------

    def run_all(self) -> List[ChaosResult]:
        return [
            self.kill_recover_audit(),
            self.truncate_fallback(),
            self.corrupt_fallback(),
            self.drop_exports(),
            self.window_corruption(),
            self.client_flood(),
            self.slow_consumer(),
        ]


def run_chaos(
    packets: int = 60_000,
    seed: int = 7,
    directory: Optional[str] = None,
    quick: bool = False,
) -> List[ChaosResult]:
    """Run every scenario; ``quick`` shrinks the trace for CI smoke."""
    if quick:
        packets = min(packets, 24_000)
    runner = ChaosRunner(packets=packets, seed=seed, directory=directory)
    return runner.run_all()
