"""Command-line interface: ``nitrosketch <subcommand>``.

Subcommands:

* ``generate`` -- synthesise a trace family to ``.npz`` or ``.pcap``;
* ``monitor``  -- run a (Nitro-)sketch over a trace file and report
  heavy hitters / entropy / distinct flows;
* ``simulate`` -- run the software-switch simulator over a trace and
  report throughput and CPU shares;
* ``experiment`` -- regenerate a paper table/figure by name;
* ``telemetry`` -- run an instrumented demo, dump/validate a metrics
  snapshot (Prometheus text or JSON), export a JSONL event trace, or
  serve everything over HTTP (see docs/OBSERVABILITY.md);
* ``audit`` -- run the demo pipeline with a live shadow auditor and
  guarantee monitor, serve and probe the ``/health`` endpoint, and exit
  non-zero when the verdict disagrees with the expectation (the CI
  audit-smoke job's entry point; ``--corrupt`` exercises the violation
  path);
* ``top`` -- live terminal dashboard (error vs bound, p, throughput,
  per-stage timings, health) over a ``/snapshot`` URL or an in-process
  demo run;
* ``chaos`` -- fault-injection harness: kill-mid-epoch, truncated and
  corrupted checkpoints, dropped exports, each followed by recovery and
  a shadow-audited bound check (the CI chaos-smoke job's entry point;
  see docs/RECOVERY.md);
* ``selfcheck`` -- the differential + statistical correctness harness:
  every ingest path against the vanilla oracle, the sampling process
  against its closed-form math, the stack's cross-component invariants
  under load, the parallel plane against its sequential oracle, and the
  sliding-window substrate against from-scratch window oracles;
  exits non-zero on any violation (the CI selfcheck-smoke,
  parallel-smoke and windows-smoke jobs' entry point; see
  docs/VERIFICATION.md);
* ``parallel`` -- run the multiprocess shared-memory ingest engine over
  a trace and report per-worker and aggregate throughput honestly
  (wall, CPU-clock, busy-wall -- see docs/PARALLELISM.md);
* ``trace`` -- run the parallel engine with span tracing on and render
  the per-epoch trace tree: worker ingest and mailbox-publish spans
  (shipped across process boundaries in the epoch-frame metadata)
  nested under the parent's epoch/CRC/merge spans;
* ``profile`` -- ingest a trace with the per-stage latency profiler
  attached and report count/total/p50/p95/p99 per pipeline stage plus
  flamegraph-compatible collapsed stacks (see docs/OBSERVABILITY.md);
* ``serve`` -- the always-on monitoring service: an asyncio ingest
  endpoint accepting framed key batches from concurrent clients into
  per-tenant sketch namespaces (LRU + idle eviction under one memory
  budget), a REST query plane (``/tenants/<id>/heavy_hitters``
  ``/point`` ``/entropy`` ``/change`` ``/reports`` next to ``/metrics``
  ``/health``), checkpoint-on-exit and restore-on-start (see
  docs/SERVICE.md).

Examples::

    nitrosketch generate caida --packets 1000000 --out trace.npz
    nitrosketch monitor trace.npz --sketch univmon --probability 0.01
    nitrosketch simulate trace.npz --platform ovs --mode separate
    nitrosketch experiment fig8 --scale 0.05
    nitrosketch telemetry --demo --format prom
    nitrosketch telemetry --demo --serve --port 9109
    nitrosketch audit --packets 50000
    nitrosketch audit --corrupt
    nitrosketch chaos --quick
    nitrosketch selfcheck --quick
    nitrosketch selfcheck --suite differential --seed 3
    nitrosketch selfcheck --suite parallel --quick
    nitrosketch parallel --workers 4 --packets 400000
    nitrosketch trace --workers 2 --packets 100000
    nitrosketch profile --packets 200000 --sample-every 4
    nitrosketch top --url http://127.0.0.1:9109/snapshot
    nitrosketch alerts --demo
    nitrosketch alerts --demo --serve --port 9109
    nitrosketch alerts --eval --packets 20000
    nitrosketch serve --ingest-port 9200 --http-port 9109 --checkpoint-dir /var/lib/nitro
    nitrosketch serve --demo --duration 5
    nitrosketch selfcheck --suite service --quick
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Optional

from repro.core import NitroMode, nitro_countmin, nitro_countsketch, nitro_kary, nitro_univmon
from repro.experiments.common import vanilla_monitor
from repro.experiments.report import print_result
from repro.metrics.accuracy import (
    empirical_entropy,
    heavy_hitter_truth,
    mean_relative_error,
    recall,
)
from repro.switchsim import (
    BESSPipeline,
    IntegrationMode,
    MeasurementDaemon,
    OVSDPDKPipeline,
    SwitchSimulator,
    VPPPipeline,
)
from repro.traffic import TRACE_FAMILIES, load_trace, read_pcap, save_trace, write_pcap

EXPERIMENT_NAMES = (
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablation",
    "adaptive",
    "validation",
    "parallel_scaling",
)

PLATFORMS = {
    "ovs": OVSDPDKPipeline,
    "vpp": VPPPipeline,
    "bess": BESSPipeline,
}


def _load_trace(path: str):
    if path.endswith(".pcap"):
        return read_pcap(path)
    return load_trace(path)


def _build_monitor(args):
    nitro_factories = {
        "cm": nitro_countmin,
        "cs": nitro_countsketch,
        "kary": nitro_kary,
    }
    mode = NitroMode(args.mode) if args.vanilla is False else None
    if args.vanilla:
        return vanilla_monitor(args.sketch, seed=args.seed, k=args.top_k)
    if args.sketch == "univmon":
        return nitro_univmon(
            probability=args.probability, mode=mode, k=args.top_k, seed=args.seed
        )
    return nitro_factories[args.sketch](
        probability=args.probability, mode=mode, top_k=args.top_k, seed=args.seed
    )


def cmd_generate(args) -> int:
    generator = TRACE_FAMILIES[args.family]
    trace = generator(args.packets, seed=args.seed)
    if args.out.endswith(".pcap"):
        write_pcap(trace, args.out)
    else:
        save_trace(trace, args.out)
    print(
        "wrote %s: %d packets, %d flows, mean size %.0fB"
        % (args.out, len(trace), trace.flow_count(), trace.mean_packet_size)
    )
    return 0


def cmd_monitor(args) -> int:
    trace = _load_trace(args.trace)
    monitor = _build_monitor(args)
    monitor.update_batch(trace.keys)
    threshold = args.threshold * len(trace)
    hitters = monitor.heavy_hitters(threshold)
    counts = trace.counts()
    truth = heavy_hitter_truth(counts, args.threshold)
    print(
        "%d packets, %d flows; %d heavy hitters above %.3f%% "
        "(recall %.1f%%, mean rel. error %.2f%%)"
        % (
            len(trace),
            len(counts),
            len(hitters),
            100 * args.threshold,
            100 * recall({key for key, _ in hitters}, truth),
            100 * mean_relative_error(dict(hitters), counts),
        )
    )
    for key, estimate in hitters[: args.show]:
        print("  flow %20d  ~%.0f packets (true %d)" % (key, estimate, counts.get(key, 0)))
    if hasattr(monitor, "entropy_estimate"):
        print(
            "entropy: %.3f bits (true %.3f)"
            % (monitor.entropy_estimate(), empirical_entropy(counts))
        )
    if hasattr(monitor, "distinct_estimate"):
        print("distinct flows: ~%.0f (true %d)" % (monitor.distinct_estimate(), len(counts)))
    return 0


def cmd_simulate(args) -> int:
    trace = _load_trace(args.trace)
    monitor = _build_monitor(args)
    mode = (
        IntegrationMode.SEPARATE_THREAD
        if args.integration == "separate"
        else IntegrationMode.ALL_IN_ONE
    )
    daemon = MeasurementDaemon(monitor, mode, name=args.sketch, use_batch=False)
    simulator = SwitchSimulator(PLATFORMS[args.platform](), daemon)
    result = simulator.run(trace, offered_gbps=args.offered_gbps)
    for key, value in result.summary().items():
        print("%-18s %s" % (key, value))
    return 0


def cmd_telemetry(args) -> int:
    from repro.telemetry import Telemetry, Tracer
    from repro.telemetry.demo import run_demo, validate

    if not args.demo and not args.serve:
        print("telemetry: nothing to do (pass --demo and/or --serve)", file=sys.stderr)
        return 2
    if args.trace_capacity < 1:
        print("telemetry: --trace-capacity must be >= 1", file=sys.stderr)
        return 2

    telemetry = Telemetry(tracer=Tracer(capacity=args.trace_capacity))
    if args.demo:
        summary = run_demo(telemetry, packets=args.packets, seed=args.seed)
        print(
            "demo: %(packets)d packets, converged=%(converged)s at packet "
            "%(converged_at_packet)s, p=%(probability)s, %(epochs)d control epochs"
            % summary,
            file=sys.stderr,
        )
        problems = validate(telemetry)
        if problems:
            for problem in problems:
                print("telemetry validation: %s" % problem, file=sys.stderr)
            return 1
        print("telemetry snapshot validated", file=sys.stderr)

    body = (
        telemetry.render_json() if args.format == "json" else telemetry.render_prometheus()
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(body)
        print("wrote %s" % args.out, file=sys.stderr)
    else:
        print(body, end="")

    if args.trace_out:
        count = telemetry.tracer.write_jsonl(args.trace_out)
        print("wrote %d events to %s" % (count, args.trace_out), file=sys.stderr)

    if args.serve:
        from repro.telemetry import TelemetryServer
        from repro.telemetry.health import HealthEvaluator

        server = TelemetryServer(
            telemetry,
            host=args.host,
            port=args.port,
            health=HealthEvaluator(telemetry),
        )
        print(
            "serving /metrics /snapshot /trace /health on http://%s:%d "
            "(Ctrl-C to stop)" % (args.host, server.port),
            file=sys.stderr,
        )
        server.serve_forever(install_sigint_handler=True)
    return 0


def cmd_audit(args) -> int:
    import json
    import urllib.error
    import urllib.request

    from repro.telemetry import Telemetry, TelemetryServer
    from repro.telemetry.demo import run_audited_demo, validate_audit
    from repro.telemetry.health import HealthEvaluator, default_rules

    telemetry = Telemetry()
    summary = run_audited_demo(
        telemetry, packets=args.packets, seed=args.seed, corrupt=args.corrupt
    )
    print(
        "audit: %(packets)d packets, %(guarantee)s bound %(bound).1f, "
        "observed max error %(observed_max_error).1f (ratio %(ratio).3f), "
        "violations %(violations)d" % summary,
        file=sys.stderr,
    )

    problems = validate_audit(telemetry, expect_violation=args.corrupt)
    evaluator = HealthEvaluator(telemetry, default_rules(error_slo=args.error_slo))
    with TelemetryServer(
        telemetry, host=args.host, port=args.port, health=evaluator
    ).start() as server:
        url = "http://%s:%d/health" % (args.host, server.port)
        try:
            with urllib.request.urlopen(url, timeout=10.0) as response:
                http_status = response.status
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:  # 503 carries the body too
            http_status = error.code
            payload = json.loads(error.read().decode("utf-8"))
        if args.serve:
            import time

            print(
                "serving /metrics /snapshot /trace /health on %s (Ctrl-C to stop)"
                % url,
                file=sys.stderr,
            )
            try:
                while True:  # the daemon thread serves; park until Ctrl-C
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
    print(json.dumps(payload, indent=2, sort_keys=True))

    if args.corrupt:
        if not summary["violated"]:
            problems.append("corrupted sketch did not violate the bound")
        if payload["status"] != "fail" or http_status != 503:
            problems.append(
                "/health on the corrupted run returned %s (HTTP %d), expected "
                "fail (HTTP 503)" % (payload["status"], http_status)
            )
    else:
        if summary["violated"]:
            problems.append("clean run violated the guarantee bound")
        if payload["status"] == "fail" or http_status != 200:
            problems.append(
                "/health on the clean run returned %s (HTTP %d), expected "
                "ok/warn (HTTP 200)" % (payload["status"], http_status)
            )
    for problem in problems:
        print("audit: %s" % problem, file=sys.stderr)
    if not problems:
        print(
            "audit: %s path verified (/health %d, status %s)"
            % ("violation" if args.corrupt else "clean", http_status, payload["status"]),
            file=sys.stderr,
        )
    return 1 if problems else 0


def cmd_alerts(args) -> int:
    import json
    import re
    import urllib.error
    import urllib.request

    from repro.telemetry import Telemetry, TelemetryServer, WebhookReceiver
    from repro.telemetry.demo import run_alert_demo, validate_alert_demo
    from repro.telemetry.health import HealthEvaluator

    if not (args.demo or args.eval or args.serve):
        print(
            "alerts: nothing to do (pass --demo, --eval, and/or --serve)",
            file=sys.stderr,
        )
        return 2

    telemetry = Telemetry()
    evaluator = HealthEvaluator(telemetry)
    server = TelemetryServer(
        telemetry, host=args.host, port=args.port, health=evaluator
    ).start()
    problems = []
    probe = {}

    def on_ready(objects):
        # Attach the live alert plane to the already-running server so
        # /alerts, /rules, /history, and /health reflect the run as it
        # happens -- and so the firing-instant probe below sees it.
        server.alerts = objects["manager"]
        server.history = objects["history"]
        evaluator.alerts = objects["manager"]

    def on_transition(event):
        if event["alert"] != "entropy_collapse" or event["to"] != "firing":
            return
        base = "http://%s:%d" % (args.host, server.port)
        try:
            with urllib.request.urlopen(base + "/alerts", timeout=10.0) as response:
                probe["alerts"] = json.loads(response.read().decode("utf-8"))
            with urllib.request.urlopen(base + "/metrics", timeout=10.0) as response:
                probe["metrics"] = response.read().decode("utf-8")
        except Exception as error:  # noqa: BLE001 - report, don't crash the run
            probe["error"] = str(error)

    receiver = None
    webhook_url = args.url
    try:
        if args.demo and webhook_url is None:
            # Loopback receiver: proves webhook delivery over real HTTP.
            receiver = WebhookReceiver(host=args.host).start()
            webhook_url = receiver.url
        summary = run_alert_demo(
            telemetry,
            packets=args.packets,
            seed=args.seed,
            webhook_url=webhook_url,
            on_transition=on_transition if args.demo else None,
            on_ready=on_ready,
        )
        manager = summary["manager"]
        print(
            "alerts: %d packets, %d epochs, entropy_collapse transitions %s"
            % (summary["packets"], summary["epochs"], summary["entropy_transitions"]),
            file=sys.stderr,
        )

        if args.demo:
            problems = validate_alert_demo(
                telemetry, summary, expect_webhook=webhook_url is not None
            )
            if "error" in probe:
                problems.append(
                    "HTTP probe at the firing instant failed: %s" % probe["error"]
                )
            elif "alerts" not in probe:
                problems.append(
                    "entropy_collapse never fired, so the /alerts probe never ran"
                )
            else:
                fired = [
                    status
                    for status in probe["alerts"].get("firing", [])
                    if status["alert"] == "entropy_collapse"
                ]
                if not fired:
                    problems.append(
                        "/alerts did not list entropy_collapse under 'firing' "
                        "at the firing instant"
                    )
                pattern = (
                    r'^ALERTS\{alertname="entropy_collapse",'
                    r'alertstate="firing"[^}]*\} 1(\.0)?$'
                )
                if not re.search(pattern, probe.get("metrics", ""), re.MULTILINE):
                    problems.append(
                        'no ALERTS{alertname="entropy_collapse",alertstate='
                        '"firing"} 1 sample in /metrics at the firing instant'
                    )
            if receiver is not None:
                hits = [
                    body
                    for body in receiver.received
                    if body.get("alert") == "entropy_collapse"
                ]
                if not hits:
                    problems.append(
                        "webhook receiver saw no entropy_collapse notification"
                    )
            for problem in problems:
                print("alerts: %s" % problem, file=sys.stderr)
            if not problems:
                print(
                    "alerts: lifecycle verified over HTTP (fired, notified, "
                    "resolved; webhook %s)"
                    % ("delivered" if webhook_url else "not configured"),
                    file=sys.stderr,
                )

        if args.eval:
            print(json.dumps(manager.as_dict(), indent=2, sort_keys=True))

        if args.serve:
            import time

            print(
                "serving /metrics /snapshot /alerts /rules /history /health on "
                "http://%s:%d (Ctrl-C to stop)" % (args.host, server.port),
                file=sys.stderr,
            )
            try:
                while True:  # the daemon thread serves; park until Ctrl-C
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
    finally:
        if receiver is not None:
            receiver.close()
        server.close()
    return 1 if problems else 0


def cmd_top(args) -> int:
    from repro.telemetry.dashboard import SnapshotSource, TopLoop

    if (args.url is None) == (not args.demo):
        print("top: pass exactly one of --url or --demo", file=sys.stderr)
        return 2
    if args.url is not None:
        source = SnapshotSource(url=args.url)
    else:
        from repro.telemetry import Telemetry
        from repro.telemetry.demo import run_audited_demo
        from repro.telemetry.health import HealthEvaluator

        from repro.telemetry.health import default_rules

        telemetry = Telemetry()
        run_audited_demo(telemetry, packets=args.packets, seed=args.seed)
        HealthEvaluator(telemetry, default_rules(error_slo=args.error_slo)).evaluate()
        source = SnapshotSource(telemetry=telemetry)
    loop = TopLoop(
        source,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )
    return loop.run()


def cmd_chaos(args) -> int:
    """Inject faults, recover, audit; exit non-zero on any failure."""
    from repro.faults import run_chaos

    results = run_chaos(
        packets=args.packets,
        seed=args.seed,
        directory=args.dir,
        quick=args.quick,
    )
    failed = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        print("%-20s %s  %s" % (result.name, status, result.detail))
        if not result.passed:
            failed += 1
    print(
        "chaos: %d/%d scenario(s) passed" % (len(results) - failed, len(results))
    )
    return 1 if failed else 0


def cmd_selfcheck(args) -> int:
    """Run the verification harness; exit non-zero on any violation."""
    from repro.verify import run_selfcheck

    def stream(result) -> None:
        status = "PASS" if result.passed else "FAIL"
        print("%-42s %s  %s" % (result.name, status, result.detail))

    try:
        report = run_selfcheck(
            quick=args.quick,
            seed=args.seed,
            suites=args.suite or None,
            on_result=stream,
        )
    except ValueError as error:
        print("selfcheck: %s" % error, file=sys.stderr)
        return 2
    print("selfcheck: %s" % report.summary())
    return 0 if report.passed else 1


def cmd_parallel(args) -> int:
    """Run the multiprocess ingest engine over a trace and report rates."""
    from repro.parallel import (
        NitroFactory,
        ParallelIngestEngine,
        VanillaFactory,
        parallel_unavailable_reason,
    )
    from repro.traffic.traces import caida_like

    reason = parallel_unavailable_reason()
    if reason:
        print("parallel: %s" % reason, file=sys.stderr)
        return 2
    if args.trace is not None:
        trace = _load_trace(args.trace)
    else:
        trace = caida_like(args.packets, seed=args.seed)
    if args.nitro:
        factory = NitroFactory(
            sketch=args.sketch,
            depth=args.depth,
            width=args.width,
            probability=args.probability,
            seed=args.seed,
        )
    else:
        factory = VanillaFactory(
            sketch=args.sketch, depth=args.depth, width=args.width, seed=args.seed
        )
    engine = ParallelIngestEngine(
        factory,
        workers=args.workers,
        strategy=args.strategy,
        epoch_packets=args.epoch_packets,
        batch_size=args.batch_size,
    )
    result = engine.run(trace.keys)
    print(
        "%d workers (%s, %s%s), %d packets, %d epoch(s), start method %s, "
        "host CPUs %d"
        % (
            result.workers,
            result.strategy,
            "nitro-" if args.nitro else "",
            args.sketch,
            result.packets,
            result.epochs,
            result.start_method,
            result.host_cpus,
        )
    )
    for stats in result.worker_stats:
        print(
            "  worker %d: %8d packets, %5d batches, busy %6.3fs wall / "
            "%6.3fs cpu, %6.2f Mpps (cpu clock)%s"
            % (
                stats.worker,
                stats.packets,
                stats.batches,
                stats.busy_wall_seconds,
                stats.busy_cpu_seconds,
                stats.cpu_mpps,
                ", %d restart(s)" % stats.restarts if stats.restarts else "",
            )
        )
    print("wall (end-to-end)       %8.2f Mpps" % result.wall_mpps)
    print("aggregate (cpu clock)   %8.2f Mpps" % result.aggregate_cpu_mpps)
    print("aggregate (busy wall)   %8.2f Mpps" % result.aggregate_busy_mpps)
    return 0


def cmd_trace(args) -> int:
    """Parallel run with span tracing; render the per-epoch trace tree."""
    from repro.parallel import (
        ParallelIngestEngine,
        VanillaFactory,
        parallel_unavailable_reason,
    )
    from repro.telemetry import Telemetry, render_span_tree
    from repro.traffic.traces import caida_like

    if args.trace is not None:
        trace = _load_trace(args.trace)
    else:
        trace = caida_like(args.packets, seed=args.seed)
    epoch_packets = args.epoch_packets or max(1, len(trace) // max(args.epochs, 1))
    telemetry = Telemetry()
    factory = VanillaFactory(
        sketch=args.sketch, depth=args.depth, width=args.width, seed=args.seed
    )
    engine = ParallelIngestEngine(
        factory,
        workers=args.workers,
        strategy="merge",
        epoch_packets=epoch_packets,
        batch_size=args.batch_size,
        telemetry=telemetry,
    )
    reason = parallel_unavailable_reason()
    if args.sequential or reason is not None:
        if reason is not None and not args.sequential:
            print(
                "trace: %s; falling back to the in-process oracle" % reason,
                file=sys.stderr,
            )
        result = engine.run_sequential(trace.keys)
    else:
        result = engine.run(trace.keys)
    spans = telemetry.spans.spans()
    print(
        "trace: %d packets, %d worker(s), %d epoch(s), %d span(s) across "
        "%d trace(s)"
        % (
            result.packets,
            result.workers,
            result.epochs,
            len(spans),
            len(telemetry.spans.trace_ids()),
        ),
        file=sys.stderr,
    )
    print(render_span_tree(spans), end="")
    if args.out:
        count = telemetry.spans.write_jsonl(args.out)
        print("wrote %d spans to %s" % (count, args.out), file=sys.stderr)
    return 0


def cmd_profile(args) -> int:
    """Profiled ingest: per-stage latency table + collapsed stacks."""
    import time as _time

    from repro.telemetry import HistoryStore, Telemetry
    from repro.telemetry.profile import (
        StageProfiler,
        collapsed_stacks,
        render_stage_table,
    )
    from repro.traffic.traces import caida_like

    if args.sample_every < 1:
        print("profile: --sample-every must be >= 1", file=sys.stderr)
        return 2
    if args.trace is not None:
        trace = _load_trace(args.trace)
    else:
        trace = caida_like(args.packets, seed=args.seed)
    telemetry = Telemetry()
    profiler = StageProfiler(telemetry, sample_every=args.sample_every)
    monitor = _build_monitor(args)
    if hasattr(monitor, "telemetry"):
        monitor.telemetry = telemetry
    if hasattr(monitor, "profiler"):
        monitor.profiler = profiler
    elif hasattr(monitor, "sketches"):  # UnivMon: profile every level
        for level in monitor.sketches:
            if hasattr(level, "profiler"):
                level.profiler = profiler
    history = HistoryStore(capacity=args.history_capacity)
    keys = trace.keys
    n_batches = max(1, -(-len(keys) // args.batch_size))
    history_every = max(1, n_batches // 64)
    for index, start in enumerate(range(0, len(keys), args.batch_size)):
        monitor.update_batch(keys[start : start + args.batch_size])
        if index % history_every == 0:
            history.record(telemetry.snapshot())
    history.record(telemetry.snapshot())
    print(
        "profile: %d packets in %d batches, profiled every %d batch(es) "
        "(%d sampled), %d history sample(s)"
        % (
            len(keys),
            profiler.batches_seen,
            args.sample_every,
            profiler.batches_profiled,
            len(history),
        ),
        file=sys.stderr,
    )
    print(render_stage_table(telemetry.registry), end="")
    stacks = collapsed_stacks(telemetry.registry)
    if args.collapsed_out:
        with open(args.collapsed_out, "w") as handle:
            handle.write(stacks)
        print("wrote collapsed stacks to %s" % args.collapsed_out, file=sys.stderr)
    else:
        print()
        print("collapsed stacks (flamegraph.pl / speedscope):")
        print(stacks, end="")
    if args.serve:
        from repro.telemetry import TelemetryServer
        from repro.telemetry.health import HealthEvaluator

        server = TelemetryServer(
            telemetry,
            host=args.host,
            port=args.port,
            health=HealthEvaluator(telemetry),
            history=history,
        ).start()
        print(
            "serving /metrics /snapshot /trace /spans /history /health on "
            "http://%s:%d (Ctrl-C to stop)" % (args.host, server.port),
            file=sys.stderr,
        )
        try:
            while True:  # record one history sample per second
                _time.sleep(1.0)
                history.record(telemetry.snapshot())
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
    return 0


def cmd_serve(args) -> int:
    """Run the always-on monitoring service until SIGINT (or --duration)."""
    import time as _time

    from repro.service import IngestClient, MonitoringService, ServiceConfig
    from repro.telemetry import Telemetry

    config = ServiceConfig(
        depth=args.depth,
        width=args.width,
        probability=args.probability,
        epsilon=args.epsilon,
        seed=args.seed,
        queue_capacity=args.queue_capacity,
        overflow=args.overflow,
        window_epochs=args.window_epochs,
        epoch_batches=args.epoch_batches,
        audit=args.audit,
        max_tenants=args.max_tenants,
        memory_budget_bytes=int(args.memory_budget_mb * 1024 * 1024),
        idle_seconds=args.idle_seconds,
        checkpoint_dir=args.checkpoint_dir,
    )
    telemetry = Telemetry()
    service = MonitoringService(
        config,
        telemetry=telemetry,
        host=args.host,
        ingest_port=args.ingest_port,
        http_port=args.http_port,
    ).start()
    print("nitrosketch serve: ingest on %s:%d, http on %s:%d"
          % (args.host, service.ingest_port, args.host, service.http_port))
    print("  query:  curl http://%s:%d/tenants" % (args.host, service.http_port))
    if config.checkpoint_dir:
        print("  checkpoints: %s" % config.checkpoint_dir)
    if args.demo:
        # Seed two tenants with synthetic traffic so the query plane has
        # something to show immediately.
        import numpy as np

        from repro.traffic.traces import caida_like

        with IngestClient(args.host, service.ingest_port) as client:
            for tenant, offset in (("demo_a", 0), ("demo_b", 1 << 32)):
                trace = caida_like(20_000, n_flows=1000, seed=args.seed)
                keys = trace.keys + offset
                for start in range(0, len(keys), 2000):
                    client.ingest(tenant, keys[start : start + 2000])
                client.sync(tenant)
        print("  demo tenants ingested: demo_a, demo_b")
    try:
        if args.duration > 0:
            _time.sleep(args.duration)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        print("\nnitrosketch serve: shutting down (drain + checkpoint)")
    finally:
        service.stop()
    stats = service.tenants.stats()
    print(
        "nitrosketch serve: stopped cleanly (%d tenants, %d created, %d evicted)"
        % (stats["tenants"], stats["created"], stats["evicted"])
    )
    return 0


def cmd_experiment(args) -> int:
    module = importlib.import_module("repro.experiments.%s" % args.name)
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    output = module.run(**kwargs)
    panels = output if isinstance(output, tuple) else (output,)
    for panel in panels:
        print_result(panel)
        print()
    return 0


def _add_monitor_arguments(parser) -> None:
    parser.add_argument(
        "--sketch", choices=("cm", "cs", "kary", "univmon"), default="cs"
    )
    parser.add_argument("--probability", type=float, default=0.01)
    parser.add_argument(
        "--mode",
        choices=("fixed", "always_line_rate", "always_correct"),
        default="fixed",
    )
    parser.add_argument("--vanilla", action="store_true", help="disable NitroSketch")
    parser.add_argument("--top-k", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nitrosketch", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesise a trace")
    generate.add_argument("family", choices=sorted(TRACE_FAMILIES))
    generate.add_argument("--packets", type=int, default=1_000_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help=".npz or .pcap path")
    generate.set_defaults(func=cmd_generate)

    monitor = sub.add_parser("monitor", help="run a sketch over a trace")
    monitor.add_argument("trace", help=".npz or .pcap trace file")
    monitor.add_argument("--threshold", type=float, default=0.0005)
    monitor.add_argument("--show", type=int, default=10)
    _add_monitor_arguments(monitor)
    monitor.set_defaults(func=cmd_monitor)

    simulate = sub.add_parser("simulate", help="switch-simulator run")
    simulate.add_argument("trace")
    simulate.add_argument("--platform", choices=sorted(PLATFORMS), default="ovs")
    simulate.add_argument(
        "--integration", choices=("aio", "separate"), default="aio"
    )
    simulate.add_argument("--offered-gbps", type=float, default=40.0)
    _add_monitor_arguments(simulate)
    simulate.set_defaults(func=cmd_simulate)

    experiment = sub.add_parser("experiment", help="regenerate a paper figure")
    experiment.add_argument("name", choices=EXPERIMENT_NAMES)
    experiment.add_argument("--scale", type=float, default=None)
    experiment.set_defaults(func=cmd_experiment)

    telemetry = sub.add_parser(
        "telemetry", help="instrumented demo run, snapshot dump, HTTP endpoint"
    )
    telemetry.add_argument(
        "--demo",
        action="store_true",
        help="run the instrumented demo pipeline and validate its snapshot",
    )
    telemetry.add_argument("--packets", type=int, default=100_000)
    telemetry.add_argument("--seed", type=int, default=7)
    telemetry.add_argument(
        "--format", choices=("prom", "json"), default="prom", help="snapshot format"
    )
    telemetry.add_argument("--out", default=None, help="snapshot path (default stdout)")
    telemetry.add_argument(
        "--trace-out", default=None, help="write the JSONL event trace here"
    )
    telemetry.add_argument(
        "--trace-capacity", type=int, default=4096, help="event ring-buffer size"
    )
    telemetry.add_argument(
        "--serve", action="store_true", help="serve /metrics /snapshot /trace over HTTP"
    )
    telemetry.add_argument("--host", default="127.0.0.1")
    telemetry.add_argument("--port", type=int, default=9109)
    telemetry.set_defaults(func=cmd_telemetry)

    audit = sub.add_parser(
        "audit",
        help="audited demo run + /health probe (CI audit-smoke entry point)",
    )
    audit.add_argument("--packets", type=int, default=50_000)
    audit.add_argument("--seed", type=int, default=7)
    audit.add_argument(
        "--corrupt",
        action="store_true",
        help="smash the sketch after ingest; the violation alert must fire",
    )
    audit.add_argument(
        "--error-slo",
        type=float,
        default=5.0,
        help="mean relative-error SLO for the health rule set",
    )
    audit.add_argument(
        "--serve", action="store_true", help="keep serving HTTP after the probe"
    )
    audit.add_argument("--host", default="127.0.0.1")
    audit.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    audit.set_defaults(func=cmd_audit)

    top = sub.add_parser("top", help="live terminal dashboard")
    top.add_argument(
        "--url", default=None, help="a TelemetryServer /snapshot URL to poll"
    )
    top.add_argument(
        "--demo",
        action="store_true",
        help="render over an in-process audited demo run instead of a URL",
    )
    top.add_argument("--interval", type=float, default=1.0)
    top.add_argument(
        "--iterations", type=int, default=None, help="frames to render (default: run until Ctrl-C)"
    )
    top.add_argument(
        "--no-clear", action="store_true", help="do not clear the screen between frames"
    )
    top.add_argument("--packets", type=int, default=50_000)
    top.add_argument("--seed", type=int, default=7)
    top.add_argument("--error-slo", type=float, default=5.0)
    top.set_defaults(func=cmd_top)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection: inject -> recover -> audit (see docs/RECOVERY.md)",
    )
    chaos.add_argument(
        "--quick", action="store_true", help="CI-sized trace (the chaos-smoke job)"
    )
    chaos.add_argument("--packets", type=int, default=60_000)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--dir", default=None, help="checkpoint directory (default: a temp dir)"
    )
    chaos.set_defaults(func=cmd_chaos)

    selfcheck = sub.add_parser(
        "selfcheck",
        help="differential/statistical/invariant harness (see docs/VERIFICATION.md)",
    )
    selfcheck.add_argument(
        "--quick", action="store_true", help="CI-sized run (the selfcheck-smoke job)"
    )
    selfcheck.add_argument("--seed", type=int, default=0)
    selfcheck.add_argument(
        "--suite",
        action="append",
        choices=("differential", "statistical", "invariant", "parallel", "windows", "service"),
        default=None,
        help="run only the named suite (repeatable; default: all)",
    )
    selfcheck.set_defaults(func=cmd_selfcheck)

    parallel = sub.add_parser(
        "parallel",
        help="multiprocess shared-memory ingest run (see docs/PARALLELISM.md)",
    )
    parallel.add_argument(
        "trace", nargs="?", default=None, help=".npz/.pcap trace (default: synthetic)"
    )
    parallel.add_argument("--packets", type=int, default=400_000,
                          help="synthetic trace size when no trace file is given")
    parallel.add_argument("--workers", type=int, default=4)
    parallel.add_argument(
        "--strategy", choices=("merge", "shared"), default="shared"
    )
    parallel.add_argument(
        "--sketch", choices=("countmin", "countsketch", "kary"), default="countmin"
    )
    parallel.add_argument(
        "--nitro", action="store_true",
        help="run NitroSketch monitors instead of vanilla sketches",
    )
    parallel.add_argument("--probability", type=float, default=0.01)
    parallel.add_argument("--depth", type=int, default=5)
    parallel.add_argument("--width", type=int, default=102_400)
    parallel.add_argument("--batch-size", type=int, default=16_384)
    parallel.add_argument(
        "--epoch-packets", type=int, default=None,
        help="packets per epoch (merge strategy only; default: one epoch)",
    )
    parallel.add_argument("--seed", type=int, default=0)
    parallel.set_defaults(func=cmd_parallel)

    trace = sub.add_parser(
        "trace",
        help="parallel run with span tracing; render the per-epoch trace tree",
    )
    trace.add_argument(
        "trace", nargs="?", default=None, help=".npz/.pcap trace (default: synthetic)"
    )
    trace.add_argument("--packets", type=int, default=100_000,
                       help="synthetic trace size when no trace file is given")
    trace.add_argument("--workers", type=int, default=2)
    trace.add_argument("--epochs", type=int, default=2,
                       help="epoch count when --epoch-packets is not given")
    trace.add_argument("--epoch-packets", type=int, default=None)
    trace.add_argument(
        "--sketch", choices=("countmin", "countsketch", "kary"), default="countmin"
    )
    trace.add_argument("--depth", type=int, default=4)
    trace.add_argument("--width", type=int, default=8_192)
    trace.add_argument("--batch-size", type=int, default=16_384)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--sequential", action="store_true",
        help="use the in-process sequential oracle (same spans, no processes)",
    )
    trace.add_argument("--out", default=None, help="write the span JSONL here")
    trace.set_defaults(func=cmd_trace)

    profile = sub.add_parser(
        "profile",
        help="per-stage latency profile + collapsed stacks (docs/OBSERVABILITY.md)",
    )
    profile.add_argument(
        "trace", nargs="?", default=None, help=".npz/.pcap trace (default: synthetic)"
    )
    profile.add_argument("--packets", type=int, default=200_000,
                         help="synthetic trace size when no trace file is given")
    profile.add_argument(
        "--sample-every", type=int, default=4,
        help="profile every Nth batch (1 = every batch)",
    )
    profile.add_argument("--batch-size", type=int, default=16_384)
    profile.add_argument(
        "--collapsed-out", default=None,
        help="write flamegraph collapsed stacks here instead of stdout",
    )
    profile.add_argument("--history-capacity", type=int, default=512)
    profile.add_argument(
        "--serve", action="store_true",
        help="serve /metrics /snapshot /trace /spans /history /health after the run",
    )
    profile.add_argument("--host", default="127.0.0.1")
    profile.add_argument("--port", type=int, default=9109)
    _add_monitor_arguments(profile)
    profile.set_defaults(func=cmd_profile)

    serve = sub.add_parser(
        "serve",
        help="always-on monitoring service: async ingest + multi-tenant "
        "query plane (see docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--ingest-port", type=int, default=9200,
                       help="wire-ingest TCP port (0 = ephemeral)")
    serve.add_argument("--http-port", type=int, default=9109,
                       help="query/metrics HTTP port (0 = ephemeral)")
    serve.add_argument("--depth", type=int, default=5)
    serve.add_argument("--width", type=int, default=4096)
    serve.add_argument("--probability", type=float, default=0.1)
    serve.add_argument("--epsilon", type=float, default=0.5)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--queue-capacity", type=int, default=256,
                       help="per-tenant ingest queue depth (batches)")
    serve.add_argument("--overflow", choices=("wait", "drop"), default="wait",
                       help="full-queue policy: backpressure or shed+count")
    serve.add_argument("--window-epochs", type=int, default=0,
                       help="measure over a sliding window of this many epochs")
    serve.add_argument("--epoch-batches", type=int, default=16,
                       help="batches per detector epoch (0 = no epochs)")
    serve.add_argument("--audit", action="store_true",
                       help="attach a per-tenant live guarantee auditor")
    serve.add_argument("--max-tenants", type=int, default=64)
    serve.add_argument("--memory-budget-mb", type=float, default=0.0,
                       help="summed sketch-memory budget (0 = unbounded)")
    serve.add_argument("--idle-seconds", type=float, default=0.0,
                       help="evict tenants idle this long (0 = never)")
    serve.add_argument("--checkpoint-dir", default=None,
                       help="persist tenants here on eviction/shutdown")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="serve this many seconds then exit (0 = until SIGINT)")
    serve.add_argument("--demo", action="store_true",
                       help="pre-ingest two synthetic demo tenants")
    serve.set_defaults(func=cmd_serve)

    alerts = sub.add_parser(
        "alerts",
        help="alerting + anomaly-detection demo (docs/OBSERVABILITY.md)",
    )
    alerts.add_argument(
        "--demo", action="store_true",
        help="replay the DDoS-onset trace and verify the full alert "
             "lifecycle over HTTP (fires, notifies, resolves)",
    )
    alerts.add_argument(
        "--eval", action="store_true",
        help="print the post-run alert states and sink stats as JSON",
    )
    alerts.add_argument(
        "--serve", action="store_true",
        help="keep serving /metrics /snapshot /alerts /rules /history "
             "/health after the run",
    )
    alerts.add_argument(
        "--url", default=None,
        help="deliver webhook notifications to this URL (default: a "
             "loopback receiver started for the demo)",
    )
    alerts.add_argument("--packets", type=int, default=60_000)
    alerts.add_argument("--seed", type=int, default=7)
    alerts.add_argument("--host", default="127.0.0.1")
    alerts.add_argument("--port", type=int, default=0)
    alerts.set_defaults(func=cmd_alerts)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
