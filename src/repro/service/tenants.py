"""Per-tenant sketch namespaces sharing one memory budget.

The north star is "millions of users": the service models that as
thousands of *tenants*, each owning an independent
:class:`~repro.switchsim.daemon.MeasurementDaemon` (its own sketch, its
own bounded ingest queue, optionally its own sliding window and live
guarantee auditor) while all of them share one resident-memory budget.

Isolation comes from the seed-derivation machinery the parallel engine
already uses: a tenant's id hashes to a 64-bit stream id, the sampler
seed derives via :meth:`NitroConfig.for_shard` and the sketch seed via a
second :func:`~repro.hashing.prng.derive_stream_seed` stream, so two
tenants never share hash functions or sampling streams -- tenant A's
traffic cannot perturb tenant B's estimates (the ``service`` selfcheck
suite proves this against a bit-identical reference build).

Eviction is LRU with an optional idle clock: when the tenant count or
the summed sketch bytes cross the configured budget, the
least-recently-touched tenant drains its queue, checkpoints through the
real :class:`~repro.control.checkpoint.CheckpointManager` machinery
(NSKW v2 frames -- byte-exact on restore) and leaves memory.  The next
ingest or query for that tenant transparently restores it.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.control.checkpoint import CheckpointManager
from repro.core.config import NitroConfig, NitroMode
from repro.hashing.prng import derive_stream_seed
from repro.service.records import validate_tenant
from repro.switchsim.daemon import MeasurementDaemon
from repro.telemetry import NULL_TELEMETRY

#: Second derivation stream for sketch seeds, so a tenant's sketch hash
#: functions are independent of its sampler stream (both still pure
#: functions of (base seed, tenant id)).
_SKETCH_SEED_SALT = 0x5EED_5A17


def tenant_stream_id(tenant: str) -> int:
    """Stable 64-bit stream id for a tenant (blake2b of the id)."""
    digest = hashlib.blake2b(tenant.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def tenant_subdir(tenant: str) -> str:
    """Checkpoint subdirectory name for a tenant (reversible hex)."""
    return "t_" + tenant.encode("utf-8").hex()


def tenant_from_subdir(name: str) -> Optional[str]:
    """Inverse of :func:`tenant_subdir`; None for foreign directories."""
    if not name.startswith("t_"):
        return None
    try:
        return bytes.fromhex(name[2:]).decode("utf-8")
    except ValueError:
        return None


@dataclass
class ServiceConfig:
    """Everything the monitoring service needs to build a tenant.

    The sketch defaults mirror the audited-demo/chaos configuration
    (AlwaysCorrect Nitro Count Sketch, loose epsilon) so Theorem-2
    envelope checks are meaningful on smoke-sized streams; production
    deployments tighten ``epsilon``/``width`` per tenant volume.
    """

    # Sketch shape (per tenant).
    depth: int = 5
    width: int = 4096
    probability: float = 0.1
    epsilon: float = 0.5
    mode: NitroMode = NitroMode.ALWAYS_CORRECT
    convergence_check_period: int = 1000
    top_k: int = 100
    seed: int = 7
    # Ingest queue (per tenant).
    queue_capacity: int = 256
    #: ``"wait"`` parks the producer until space frees (TCP backpressure
    #: propagates to the client); ``"drop"`` sheds the batch and counts
    #: it (the FIFO-overflow behaviour of a real separate-thread
    #: integration).
    overflow: str = "wait"
    # Epoch / window structure.
    window_epochs: int = 0
    epoch_batches: int = 16
    # Live guarantee auditing (PR 3).  Mutually exclusive with windows:
    # the auditor's ground truth is lifetime mass, which a rotating ring
    # deliberately forgets.
    audit: bool = False
    audit_capacity: int = 256
    # Tenancy budget.
    max_tenants: int = 64
    memory_budget_bytes: int = 0  # 0 = unbounded
    idle_seconds: float = 0.0  # 0 = no idle eviction
    # Durability.
    checkpoint_dir: Optional[str] = None
    checkpoint_keep: int = 2

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.overflow not in ("wait", "drop"):
            raise ValueError("overflow must be 'wait' or 'drop', got %r" % (self.overflow,))
        if self.max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        if self.memory_budget_bytes < 0 or self.idle_seconds < 0:
            raise ValueError("budgets must be >= 0")
        if self.audit and self.window_epochs > 0:
            raise ValueError(
                "audit and window_epochs are mutually exclusive: the guarantee "
                "auditor tracks lifetime stream mass, which a sliding window "
                "deliberately forgets"
            )
        if isinstance(self.mode, str):
            self.mode = NitroMode(self.mode)

    def nitro_config(self, tenant: str) -> NitroConfig:
        """The per-tenant :class:`NitroConfig` (derived sampler seed)."""
        sid = tenant_stream_id(tenant)
        base = NitroConfig(
            probability=self.probability,
            mode=self.mode,
            epsilon=self.epsilon,
            top_k=self.top_k,
            convergence_check_period=self.convergence_check_period,
            seed=self.seed,
        )
        # for_shard masks nothing: derive_stream_seed takes the full id.
        return replace(base, seed=derive_stream_seed(base.seed, sid))

    def sketch_seed(self, tenant: str) -> int:
        """The per-tenant sketch (hash-function) seed."""
        sid = tenant_stream_id(tenant)
        return derive_stream_seed(self.seed, sid ^ _SKETCH_SEED_SALT)

    def build_monitor(self, tenant: str):
        """A pristine monitor for ``tenant`` -- deterministic in
        (config, tenant id), so verification can rebuild a bit-identical
        reference and replay the same stream into it."""
        from repro.core.nitro import NitroSketch
        from repro.sketches.countsketch import CountSketch

        return NitroSketch(
            CountSketch(self.depth, self.width, self.sketch_seed(tenant)),
            self.nitro_config(tenant),
        )


@dataclass
class TenantState:
    """One resident tenant: daemon + lock + bookkeeping."""

    name: str
    daemon: MeasurementDaemon
    #: Serialises drain (asyncio thread) against queries (HTTP threads).
    lock: threading.RLock = field(default_factory=threading.RLock)
    last_active: float = 0.0
    #: Per-tenant anomaly detectors (null-telemetry: the shared anomaly
    #: gauges are unlabeled, so per-tenant signals stay on the object).
    anomaly: Optional[object] = None
    #: Per-tenant GuaranteeMonitor when auditing is on.
    guarantee: Optional[object] = None
    #: Wire-side accounting (batches never enqueued due to drop policy
    #: live in ``daemon.batches_dropped``).
    batches_accepted: int = 0
    packets_accepted: int = 0
    restored: bool = False

    def stats(self) -> Dict[str, object]:
        daemon = self.daemon
        return {
            "tenant": self.name,
            "batches_accepted": self.batches_accepted,
            "packets_accepted": self.packets_accepted,
            "batches_ingested": daemon.batches_ingested,
            "packets_ingested": daemon.packets_offered,
            "batches_dropped": daemon.batches_dropped,
            "queue_depth": daemon.queue_depth,
            "epochs_completed": daemon.epochs_completed,
            "memory_bytes": daemon.memory_bytes(),
            "windowed": daemon.windowed,
            "audited": self.guarantee is not None,
            "restored": self.restored,
        }


class TenantManager:
    """The LRU tenant table behind the service.

    Thread-safe: the manager lock guards the table itself; each tenant's
    own lock guards its daemon.  Lock order is always manager -> tenant,
    never the reverse.
    """

    def __init__(
        self,
        config: ServiceConfig,
        telemetry=NULL_TELEMETRY,
        clock=time.monotonic,
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        self.clock = clock
        self._lock = threading.RLock()
        self._tenants: "OrderedDict[str, TenantState]" = OrderedDict()
        self.created = 0
        self.evicted = 0
        self.restored = 0

    # -- construction --------------------------------------------------------

    def _checkpoints_for(self, tenant: str) -> Optional[CheckpointManager]:
        if self.config.checkpoint_dir is None:
            return None
        directory = os.path.join(self.config.checkpoint_dir, tenant_subdir(tenant))
        return CheckpointManager(
            directory,
            prefix="tenant",
            keep=self.config.checkpoint_keep,
            telemetry=NULL_TELEMETRY,
        )

    def _build_state(self, tenant: str) -> TenantState:
        from repro.telemetry.anomaly import SketchAnomalyDetectors
        from repro.telemetry.audit import GuaranteeMonitor, ShadowAuditor

        config = self.config
        monitor = config.build_monitor(tenant)
        guarantee = None
        if config.audit:
            auditor = ShadowAuditor(
                capacity=config.audit_capacity,
                seed=derive_stream_seed(config.seed, tenant_stream_id(tenant)),
                telemetry=NULL_TELEMETRY,
            )
            guarantee = GuaranteeMonitor(auditor, monitor, telemetry=NULL_TELEMETRY)
        anomaly = SketchAnomalyDetectors(telemetry=NULL_TELEMETRY)
        daemon = MeasurementDaemon(
            monitor,
            name="svc",
            telemetry=NULL_TELEMETRY,
            auditor=guarantee,
            queue_capacity=config.queue_capacity,
            checkpoints=self._checkpoints_for(tenant),
            anomaly=anomaly if config.epoch_batches > 0 else None,
            epoch_batches=config.epoch_batches,
            window_epochs=config.window_epochs,
        )
        return TenantState(
            name=tenant, daemon=daemon, anomaly=daemon.anomaly, guarantee=guarantee
        )

    # -- lookup --------------------------------------------------------------

    def get_or_create(self, tenant: str) -> TenantState:
        """The resident state for ``tenant``, creating or restoring it.

        Creation may evict the least-recently-used tenant(s) to stay
        inside the budget; a tenant with an on-disk checkpoint restores
        byte-exactly instead of starting empty.
        """
        validate_tenant(tenant)
        with self._lock:
            state = self._tenants.get(tenant)
            if state is not None:
                self._tenants.move_to_end(tenant)
                state.last_active = self.clock()
                return state
            state = self._build_state(tenant)
            state.last_active = self.clock()
            if state.daemon.checkpoints is not None:
                if state.daemon.checkpoints.latest_sequence() is not None:
                    self._restore(state)
            self._tenants[tenant] = state
            self.created += 1
            self.telemetry.count("service_tenants_created_total")
            self._enforce_budget(protect=tenant)
            self._export_gauges()
            return state

    def get(self, tenant: str) -> Optional[TenantState]:
        """The resident state for ``tenant``; restores from checkpoint
        if evicted earlier, but never creates a brand-new tenant."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is not None:
                self._tenants.move_to_end(tenant)
                state.last_active = self.clock()
                return state
            checkpoints = self._checkpoints_for(tenant)
            if checkpoints is not None and checkpoints.latest_sequence() is not None:
                return self.get_or_create(tenant)
            return None

    def _restore(self, state: TenantState) -> None:
        if state.daemon.restore_latest():
            # restore_latest swapped the monitor object: the guarantee
            # tracker (if any) must audit the restored instance.
            if state.guarantee is not None:
                state.guarantee.monitor = state.daemon.monitor
            state.restored = True
            self.restored += 1
            self.telemetry.count("service_tenants_restored_total")

    # -- budget / eviction ---------------------------------------------------

    def memory_bytes(self) -> int:
        """Summed sketch working set across resident tenants."""
        with self._lock:
            return sum(
                state.daemon.memory_bytes() for state in self._tenants.values()
            )

    def _enforce_budget(self, protect: Optional[str] = None) -> None:
        config = self.config
        while len(self._tenants) > 1:
            over_count = len(self._tenants) > config.max_tenants
            over_bytes = (
                config.memory_budget_bytes > 0
                and self.memory_bytes() > config.memory_budget_bytes
            )
            if not over_count and not over_bytes:
                break
            victim = next(iter(self._tenants))
            if victim == protect:
                # The newest tenant alone busts the budget; nothing
                # sane to evict.
                break
            self._evict(victim, reason="budget")

    def sweep_idle(self) -> int:
        """Evict tenants idle longer than ``idle_seconds``; returns count."""
        if self.config.idle_seconds <= 0:
            return 0
        cutoff = self.clock() - self.config.idle_seconds
        with self._lock:
            victims = [
                name
                for name, state in self._tenants.items()
                if state.last_active < cutoff
            ]
            for name in victims:
                self._evict(name, reason="idle")
        return len(victims)

    def evict(self, tenant: str, reason: str = "manual") -> bool:
        """Evict one tenant (drain + checkpoint + drop); False if absent."""
        with self._lock:
            if tenant not in self._tenants:
                return False
            self._evict(tenant, reason=reason)
            return True

    def _evict(self, tenant: str, reason: str) -> None:
        state = self._tenants.pop(tenant)
        with state.lock:
            # Nothing queued may be lost to an eviction: drain first,
            # then persist, so the checkpoint carries every accepted
            # packet and the next ingest resumes byte-exactly.
            state.daemon.drain()
            if state.daemon.checkpoints is not None:
                state.daemon.checkpoint()
        self.evicted += 1
        self.telemetry.count("service_tenants_evicted_total", reason=reason)
        self._export_gauges()

    # -- lifecycle -----------------------------------------------------------

    def restore_on_start(self) -> List[str]:
        """Eagerly restore every checkpointed tenant found on disk."""
        if self.config.checkpoint_dir is None or not os.path.isdir(
            self.config.checkpoint_dir
        ):
            return []
        names = []
        for entry in sorted(os.listdir(self.config.checkpoint_dir)):
            tenant = tenant_from_subdir(entry)
            if tenant is None:
                continue
            state = self.get_or_create(tenant)
            if state.restored:
                names.append(tenant)
        return names

    def checkpoint_all(self) -> int:
        """Drain + checkpoint every resident tenant (shutdown path)."""
        if self.config.checkpoint_dir is None:
            return 0
        written = 0
        with self._lock:
            states = list(self._tenants.values())
        for state in states:
            with state.lock:
                state.daemon.drain()
                state.daemon.checkpoint()
                written += 1
        return written

    def drain_all(self, max_batches_per_tenant: Optional[int] = None) -> int:
        """Drain every resident tenant's queue; returns batches drained."""
        with self._lock:
            states = list(self._tenants.values())
        drained = 0
        for state in states:
            with state.lock:
                drained += state.daemon.drain(max_batches_per_tenant)
        return drained

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __contains__(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._tenants

    def tenants(self) -> List[str]:
        """Resident tenant ids, least-recently-used first."""
        with self._lock:
            return list(self._tenants)

    def states(self) -> List[TenantState]:
        with self._lock:
            return list(self._tenants.values())

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "tenants": len(self._tenants),
                "created": self.created,
                "evicted": self.evicted,
                "restored": self.restored,
                "memory_bytes": self.memory_bytes(),
                "max_tenants": self.config.max_tenants,
                "memory_budget_bytes": self.config.memory_budget_bytes,
            }

    def _export_gauges(self) -> None:
        self.telemetry.gauge("service_tenants_active", len(self._tenants))
        self.telemetry.gauge("service_memory_bytes", self.memory_bytes())
