"""The always-on monitoring service: async ingest + query plane.

:class:`MonitoringService` composes the pieces every other PR built:

* an **asyncio ingest endpoint** (wire format in
  :mod:`repro.service.records`) accepting framed key batches from many
  concurrent clients.  Each frame lands in the owning tenant's bounded
  daemon queue; a drainer coroutine feeds queues into the sketches.
  Backpressure is real: with ``overflow="wait"`` a full queue parks the
  reading coroutine, the socket stops being read and the client's TCP
  window fills -- with ``overflow="drop"`` the batch is shed and
  accounted (``daemon_batches_dropped_total`` /
  ``service_dropped_batches_total{tenant=...}``);
* the **multi-tenant namespace** of :class:`~repro.service.tenants.TenantManager`
  (LRU + idle eviction inside one memory budget, checkpoint-on-evict);
* a **REST query plane** (:mod:`repro.service.query`) mounted onto the
  existing :class:`~repro.telemetry.TelemetryServer` via its ``routes``
  hook, so ``/metrics`` ``/health`` ``/alerts`` and ``/tenants/...``
  share one HTTP endpoint;
* **graceful lifecycle**: :meth:`stop` stops accepting, drains every
  queue, checkpoints every tenant through
  :class:`~repro.control.checkpoint.CheckpointManager`, and
  :meth:`start` restores all of them byte-exactly.

Threading model: one dedicated thread runs the asyncio loop (socket
reads + queue drain -- the CPU-heavy sketch updates); the HTTP server
answers queries from its own thread pool, synchronised per tenant with
``TenantState.lock``.  The registry lock (PR 10's scrape-race fix) keeps
exposition consistent underneath both.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional

from repro.service import records
from repro.service.query import QueryRoutes
from repro.service.tenants import ServiceConfig, TenantManager, TenantState
from repro.telemetry import NULL_TELEMETRY, TelemetryServer
from repro.telemetry.fanin import record_service_state
from repro.telemetry.health import HealthEvaluator, QueueSaturationRule, default_rules

#: How many queued batches one drainer visit ingests per tenant before
#: yielding -- bounds per-tenant latency under multi-tenant load.
DRAIN_QUANTUM = 32

#: Idle-sweep / gauge-export cadence (seconds) when no ingest arrives.
IDLE_TICK_SECONDS = 0.5


class MonitoringService:
    """A long-running, multi-tenant sketch monitoring service.

    Parameters
    ----------
    config:
        The :class:`ServiceConfig` every tenant is built from.
    telemetry:
        The (single, shared) telemetry sink; tenant labels distinguish
        per-tenant series.
    host / ingest_port / http_port:
        Bind addresses; port 0 picks ephemeral ports (read them back
        from :attr:`ingest_port` / :attr:`http_port` after
        :meth:`start`).
    http:
        Set False to run ingest-only (tests that drive queries through
        :attr:`routes` directly).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        telemetry=NULL_TELEMETRY,
        host: str = "127.0.0.1",
        ingest_port: int = 0,
        http_port: int = 0,
        http: bool = True,
        alerts=None,
        history=None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.telemetry = telemetry
        self.host = host
        self._requested_ingest_port = ingest_port
        self._requested_http_port = http_port
        self._http_enabled = http
        self.alerts = alerts
        self.history = history
        self.tenants = TenantManager(self.config, telemetry=telemetry)
        self.routes = QueryRoutes(self)
        self.health = HealthEvaluator(
            telemetry,
            rules=list(default_rules(component="svc")) + [QueueSaturationRule()],
            alerts=alerts,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[TelemetryServer] = None
        self._ready = threading.Event()
        self._stopping = False
        self._started = False
        self._work: Optional[asyncio.Event] = None
        self.ingest_port: Optional[int] = None
        self.http_port: Optional[int] = None
        self.connections_active = 0
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MonitoringService":
        """Restore checkpointed tenants, bind sockets, start serving."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        restored = self.tenants.restore_on_start()
        if restored:
            self.telemetry.event("service.restored", tenants=len(restored))
        self._thread = threading.Thread(
            target=self._run_loop, name="svc-ingest", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("ingest endpoint failed to come up")
        if self._startup_error is not None:
            raise RuntimeError(
                "ingest endpoint failed to bind"
            ) from self._startup_error
        if self._http_enabled:
            self._http_server = TelemetryServer(
                self.telemetry,
                host=self.host,
                port=self._requested_http_port,
                health=self.health,
                history=self.history,
                alerts=self.alerts,
                routes=self.routes.dispatch,
            ).start()
            self.http_port = self._http_server.port
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, checkpoint, close."""
        if not self._started or self._stopping:
            return
        self._stopping = True
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._wake)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        # The loop is gone: every accepted batch is either ingested or
        # still queued.  Drain the remainder synchronously, then persist.
        self.tenants.drain_all()
        if self.config.checkpoint_dir is not None:
            written = self.tenants.checkpoint_all()
            self.telemetry.event("service.checkpointed", tenants=written)
        if self._http_server is not None:
            self._http_server.close()
        self.telemetry.event("service.stopped")

    def __enter__(self) -> "MonitoringService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- the asyncio side ----------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # pragma: no cover - surfaced via start()
            self._startup_error = exc
            self._ready.set()

    def _wake(self) -> None:
        if self._work is not None:
            self._work.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self._requested_ingest_port,
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.ingest_port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        drainer = asyncio.ensure_future(self._drain_loop())
        try:
            while not self._stopping:
                await asyncio.sleep(0.05)
        finally:
            self._server.close()
            await self._server.wait_closed()
            await drainer

    async def _drain_loop(self) -> None:
        """Feed tenant queues into their sketches, round-robin.

        Runs on the same loop as the readers: after each tenant's
        quantum it yields, so socket reads interleave with sketch
        updates instead of starving behind them.
        """
        work = self._work
        while not self._stopping:
            try:
                await asyncio.wait_for(work.wait(), timeout=IDLE_TICK_SECONDS)
            except asyncio.TimeoutError:
                # Idle tick: sweep idle tenants, refresh gauges.
                self.tenants.sweep_idle()
                record_service_state(self.telemetry, self)
                continue
            work.clear()
            busy = True
            while busy and not self._stopping:
                busy = False
                for state in self.tenants.states():
                    with state.lock:
                        drained = state.daemon.drain(DRAIN_QUANTUM)
                    if drained:
                        busy = True
                        self.telemetry.gauge(
                            "service_queue_depth",
                            state.daemon.queue_depth,
                            tenant=state.name,
                        )
                    await asyncio.sleep(0)
        # Shutdown: one final full drain so stop() has little left to do.
        self.tenants.drain_all()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_active += 1
        with self.telemetry.atomic():
            self.telemetry.count("service_connections_total")
            self.telemetry.gauge("service_connections_active", self.connections_active)
        try:
            await self._serve_client(reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away mid-frame; per-frame accounting stands
        finally:
            self.connections_active -= 1
            self.telemetry.gauge(
                "service_connections_active", self.connections_active
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._stopping:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                self.telemetry.count("service_frames_total", outcome="oversized")
                return
            if not line:
                return  # clean EOF
            try:
                op, tenant, payload_bytes = records.decode_header(line)
            except ValueError:
                self.telemetry.count("service_frames_total", outcome="malformed")
                return  # framing is lost; close rather than guess
            if op == "bye":
                await self._reply(writer, {"ok": True})
                return
            if op == "ingest":
                payload = await reader.readexactly(payload_bytes)
                await self._ingest_frame(tenant, payload)
            elif op == "sync":
                await self._sync(tenant)
                await self._reply(writer, self._tenant_stats(tenant))
            elif op == "stats":
                await self._reply(writer, self._tenant_stats(tenant))

    async def _ingest_frame(self, tenant: str, payload: bytes) -> None:
        keys = records.decode_keys(payload)
        batch = records.batch_from_keys(keys)
        state = self.tenants.get_or_create(tenant)
        shedding = self.config.overflow == "drop"
        while True:
            with state.lock:
                # Under "wait", don't offer a batch to a full queue: a
                # refused enqueue() counts as a *drop* in the daemon's
                # books, and a parked-then-delivered batch is not one.
                if (
                    shedding
                    or self._stopping
                    or state.daemon.queue_depth < self.config.queue_capacity
                ):
                    accepted = state.daemon.enqueue(batch)
                else:
                    accepted = None  # full: park below, retry
            if accepted:
                state.batches_accepted += 1
                state.packets_accepted += len(batch)
                with self.telemetry.atomic():
                    self.telemetry.count("service_frames_total", outcome="accepted")
                    self.telemetry.count(
                        "service_ingest_batches_total", tenant=tenant
                    )
                    self.telemetry.count(
                        "service_ingest_packets_total", len(batch), tenant=tenant
                    )
                self._wake()
                return
            if accepted is False:
                # enqueue() already bumped daemon.batches_dropped.
                with self.telemetry.atomic():
                    self.telemetry.count("service_frames_total", outcome="dropped")
                    self.telemetry.count(
                        "service_dropped_batches_total", tenant=tenant
                    )
                return
            # overflow == "wait": park this reader until the drainer
            # frees queue space -- the socket stops being read, TCP
            # flow control pushes back on the client.
            self._wake()
            await asyncio.sleep(0.002)

    async def _sync(self, tenant: str) -> None:
        """Block until every accepted batch for ``tenant`` has drained."""
        state = self.tenants.get(tenant)
        if state is None:
            return
        while True:
            with state.lock:
                depth = state.daemon.queue_depth
            if depth == 0:
                return
            self._wake()
            await asyncio.sleep(0.001)

    def _tenant_stats(self, tenant: str) -> Dict[str, object]:
        state = self.tenants.get(tenant)
        if state is None:
            return {"tenant": tenant, "error": "unknown tenant"}
        with state.lock:
            return state.stats()

    async def _reply(self, writer: asyncio.StreamWriter, payload: Dict) -> None:
        import json

        writer.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    # -- conveniences (tests, CLI) -------------------------------------------

    def ingest_direct(self, tenant: str, keys) -> bool:
        """Synchronous in-process ingest (no socket); used by tests."""
        batch = records.batch_from_keys(records.decode_keys(records.encode_keys(keys)))
        state = self.tenants.get_or_create(tenant)
        with state.lock:
            accepted = state.daemon.enqueue(batch)
            if accepted:
                state.batches_accepted += 1
                state.packets_accepted += len(batch)
                state.daemon.drain()
        return accepted

    def tenant_states(self) -> List[TenantState]:
        return self.tenants.states()
