"""The REST query plane, mounted on the telemetry HTTP server.

Endpoints (all JSON, all read-only):

``GET /tenants``
    Tenant table: per-tenant stats plus the manager's budget counters.
``GET /tenants/<id>/stats``
    One tenant's ingest/queue/memory accounting.
``GET /tenants/<id>/heavy_hitters?share=0.01`` (or ``threshold=<abs>``)
    Flows above a share of the tenant's traffic (windowed traffic when
    the tenant measures over a sliding window).
``GET /tenants/<id>/point?key=1,2,3``
    Point frequency estimates for one or more flow keys.
``GET /tenants/<id>/entropy``
    Flow-size entropy estimate over the tracked heavy keys.
``GET /tenants/<id>/change``
    The anomaly detectors' latest epoch signals (change score, entropy
    drop, heavy-hitter churn) -- present once one detector epoch closed.
``GET /tenants/<id>/reports``
    The control-plane task catalogue evaluated online against the live
    sketch (:meth:`~repro.control.plane.ControlPlane.evaluate_online_epoch`).

When the tenant is audited (``ServiceConfig.audit``), every estimate
endpoint embeds the live Theorem-bound verdict of its
:class:`~repro.telemetry.audit.GuaranteeMonitor` under ``"audit"``, so a
caller can see not just the answer but whether the sketch currently
*proves* its error envelope.

Queries never create tenants (an estimate for a tenant that never
ingested is meaningless -- 404) but do transparently restore evicted
ones from checkpoint.  Every handler runs under the tenant's lock, so
answers are consistent with concurrent drain; the ``service`` selfcheck
suite verifies query-during-ingest answers stay inside the Theorem-2
envelope.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

Reply = Tuple[int, str, str]

_JSON = "application/json"


def _json_reply(status: int, payload: Dict) -> Reply:
    return status, _JSON, json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _error(status: int, message: str) -> Reply:
    return _json_reply(status, {"error": message})


class QueryRoutes:
    """Routes ``/tenants...`` paths for a :class:`MonitoringService`."""

    def __init__(self, service) -> None:
        self.service = service

    # -- plumbing ------------------------------------------------------------

    def dispatch(self, path: str, query: str) -> Optional[Reply]:
        """The ``TelemetryServer`` routes hook: None = not ours (404)."""
        if path == "/tenants":
            return self._timed("tenants", lambda p: self._list_tenants(), {})
        if not path.startswith("/tenants/"):
            return None
        parts = [part for part in path.split("/") if part]
        if len(parts) != 3:
            return _error(404, "expected /tenants/<id>/<endpoint>")
        _, tenant, endpoint = parts
        handler = {
            "stats": self._stats,
            "heavy_hitters": self._heavy_hitters,
            "point": self._point,
            "entropy": self._entropy,
            "change": self._change,
            "reports": self._reports,
        }.get(endpoint)
        if handler is None:
            return _error(404, "unknown endpoint %r" % endpoint)
        params = parse_qs(query, keep_blank_values=True)
        state = self.service.tenants.get(tenant)
        if state is None:
            return _error(404, "unknown tenant %r" % tenant)
        return self._timed(endpoint, lambda p: handler(state, p), params)

    def _timed(self, endpoint: str, handler, params) -> Reply:
        telemetry = self.service.telemetry
        telemetry.count("service_queries_total", endpoint=endpoint)
        start = time.perf_counter()
        try:
            return handler(params)
        except ValueError as exc:
            return _error(400, str(exc))
        finally:
            telemetry.observe(
                "service_query_seconds", time.perf_counter() - start, endpoint=endpoint
            )

    @staticmethod
    def _param(params: Dict, name: str) -> Optional[str]:
        values = params.get(name)
        return values[-1] if values else None

    # -- shared query context ------------------------------------------------

    @staticmethod
    def _traffic_packets(state) -> int:
        """The packet mass estimates are relative to: the sliding
        window's coverage for windowed tenants, lifetime ingest else."""
        daemon = state.daemon
        if daemon.windowed:
            return daemon.monitor.window_packets()
        return daemon.packets_offered

    @staticmethod
    def _audit_section(state) -> Optional[Dict]:
        if state.guarantee is None:
            return None
        report = state.guarantee.check()
        return report.as_dict()

    def _answer(self, state, payload: Dict) -> Reply:
        payload["tenant"] = state.name
        payload["windowed"] = state.daemon.windowed
        audit = self._audit_section(state)
        if audit is not None:
            payload["audit"] = audit
        return _json_reply(200, payload)

    # -- endpoints -----------------------------------------------------------

    def _list_tenants(self) -> Reply:
        manager = self.service.tenants
        tenants = []
        for state in manager.states():
            with state.lock:
                tenants.append(state.stats())
        payload = manager.stats()
        payload["tenant_stats"] = tenants
        return _json_reply(200, payload)

    def _stats(self, state, params) -> Reply:
        with state.lock:
            return self._answer(state, dict(state.stats()))

    def _heavy_hitters(self, state, params) -> Reply:
        share_arg = self._param(params, "share")
        threshold_arg = self._param(params, "threshold")
        with state.lock:
            packets = self._traffic_packets(state)
            if threshold_arg is not None:
                threshold = float(threshold_arg)
                share = threshold / packets if packets else 0.0
            else:
                share = float(share_arg) if share_arg is not None else 0.01
                if not 0 < share < 1:
                    raise ValueError("share must be in (0, 1)")
                threshold = share * packets
            hitters = state.daemon.monitor.heavy_hitters(threshold)
            return self._answer(
                state,
                {
                    "threshold": threshold,
                    "share": share,
                    "packets": packets,
                    "heavy_hitters": [
                        {"key": int(key), "estimate": float(est)}
                        for key, est in hitters
                    ],
                },
            )

    def _point(self, state, params) -> Reply:
        raw = self._param(params, "key")
        if raw is None:
            raise ValueError("missing ?key=<flow key>[,<flow key>...]")
        try:
            keys = [int(item) for item in raw.split(",") if item]
        except ValueError:
            raise ValueError("keys must be integers, got %r" % raw)
        if not keys:
            raise ValueError("missing ?key=<flow key>[,<flow key>...]")
        if len(keys) > 1024:
            raise ValueError("at most 1024 keys per query")
        with state.lock:
            monitor = state.daemon.monitor
            estimates = [
                {"key": key, "estimate": float(monitor.query(key))} for key in keys
            ]
            return self._answer(
                state,
                {"packets": self._traffic_packets(state), "estimates": estimates},
            )

    def _entropy(self, state, params) -> Reply:
        from repro.telemetry.anomaly import entropy_from_estimates

        with state.lock:
            monitor = state.daemon.monitor
            packets = self._traffic_packets(state)
            if hasattr(monitor, "top_items"):
                estimates = {key: est for key, est in monitor.top_items() if est > 0}
            else:
                estimates = dict(monitor.heavy_hitters(0.0))
            bits = entropy_from_estimates(estimates, packets)
            return self._answer(
                state,
                {
                    "entropy_bits": bits,
                    "packets": packets,
                    "tracked_flows": len(estimates),
                },
            )

    def _change(self, state, params) -> Reply:
        with state.lock:
            signals = getattr(state.anomaly, "last_signals", None)
            if signals is None:
                return self._answer(
                    state,
                    {
                        "signals": None,
                        "detail": "no completed detector epoch yet "
                        "(epoch_batches=%d)" % self.service.config.epoch_batches,
                    },
                )
            return self._answer(
                state,
                {
                    "signals": dict(signals),
                    "epochs_completed": state.daemon.epochs_completed,
                },
            )

    def _reports(self, state, params) -> Reply:
        from repro.control.plane import ControlPlane
        from repro.control.tasks import HeavyHitterTask

        share_arg = self._param(params, "share")
        share = float(share_arg) if share_arg is not None else 0.01
        if not 0 < share < 1:
            raise ValueError("share must be in (0, 1)")
        plane = ControlPlane(
            monitor_factory=lambda epoch: state.daemon.monitor,
            tasks=[HeavyHitterTask(threshold_fraction=share)],
            score=False,
            telemetry=self.service.telemetry,
        )
        with state.lock:
            packets = self._traffic_packets(state)
            report = plane.evaluate_online_epoch(
                state.daemon.monitor, state.daemon.epochs_completed, packets
            )
            tasks: List[Dict] = []
            for name, task_report in report.reports.items():
                tasks.append(
                    {
                        "task": name,
                        "estimate": task_report.estimate,
                        "detected": {
                            str(key): float(est)
                            for key, est in task_report.detected.items()
                        },
                    }
                )
            return self._answer(
                state, {"epoch": report.epoch, "packets": packets, "tasks": tasks}
            )
