"""The ingest wire protocol: framed packet-key batches over a socket.

One frame is a single JSON header line (UTF-8, ``\\n``-terminated)
optionally followed by a fixed-size binary payload:

``{"op": "ingest", "tenant": "<id>", "count": N}`` + ``N * 8`` bytes
    ``N`` little-endian int64 flow keys -- the same dtype the trace
    replayer and the batch kernels use, so the server can
    ``np.frombuffer`` the payload straight into a
    :class:`~repro.traffic.replay.Batch` without a Python-object per
    packet.  No reply (ingest is pipelined; backpressure is exerted by
    the server simply not reading, which fills the client's TCP window).
``{"op": "sync", "tenant": "<id>"}``
    Reply arrives once every previously-sent batch for that tenant has
    fully drained into the sketch: one JSON line of tenant stats.  The
    deterministic barrier tests, CI and the perf gate need.
``{"op": "stats", "tenant": "<id>"}``
    Same reply, immediately (no drain barrier).
``{"op": "bye"}``
    Polite close; the server answers ``{"ok": true}`` and drops the
    connection.

The header is capped at :data:`MAX_HEADER_BYTES` and a frame at
:data:`MAX_FRAME_KEYS` keys so a garbage or hostile client cannot make
the server buffer unbounded memory; tenant ids must match
:data:`TENANT_RE` (they become metric label values and checkpoint
directory names).
"""

from __future__ import annotations

import json
import re
from typing import Dict, Optional, Tuple

import numpy as np

from repro.traffic.replay import Batch

#: Wire dtype for flow keys: little-endian int64, matching trace keys.
KEY_DTYPE = np.dtype("<i8")

#: Hard cap on one header line (a legitimate header is < 128 bytes).
MAX_HEADER_BYTES = 4096

#: Hard cap on keys per frame (8 MiB of payload).
MAX_FRAME_KEYS = 1 << 20

#: Legal tenant ids: they appear in metric labels and (hex-encoded) in
#: checkpoint directory names, so keep them to a sane identifier set.
TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-]{0,63}$")

OPS = ("ingest", "sync", "stats", "bye")


def validate_tenant(tenant: str) -> str:
    """Return ``tenant`` if it is a legal id, raise ``ValueError`` otherwise."""
    if not isinstance(tenant, str) or not TENANT_RE.match(tenant):
        raise ValueError("invalid tenant id %r" % (tenant,))
    return tenant


def encode_keys(keys) -> bytes:
    """Flow keys -> wire payload (little-endian int64)."""
    return np.ascontiguousarray(keys, dtype=KEY_DTYPE).tobytes()


def decode_keys(payload: bytes) -> "np.ndarray":
    """Wire payload -> int64 key array (zero-copy view when aligned)."""
    if len(payload) % KEY_DTYPE.itemsize:
        raise ValueError(
            "payload length %d is not a multiple of %d"
            % (len(payload), KEY_DTYPE.itemsize)
        )
    return np.frombuffer(payload, dtype=KEY_DTYPE).astype(np.int64, copy=False)


def encode_frame(op: str, tenant: Optional[str] = None, keys=None) -> bytes:
    """One complete wire frame (header line + optional payload)."""
    if op not in OPS:
        raise ValueError("unknown op %r" % (op,))
    header: Dict[str, object] = {"op": op}
    if op != "bye":
        header["tenant"] = validate_tenant(tenant)
    payload = b""
    if op == "ingest":
        payload = encode_keys(keys if keys is not None else [])
        header["count"] = len(payload) // KEY_DTYPE.itemsize
        if header["count"] > MAX_FRAME_KEYS:
            raise ValueError(
                "frame carries %d keys, cap is %d" % (header["count"], MAX_FRAME_KEYS)
            )
    elif keys is not None:
        raise ValueError("op %r carries no key payload" % (op,))
    line = json.dumps(header, separators=(",", ":")).encode("ascii") + b"\n"
    if len(line) > MAX_HEADER_BYTES:
        raise ValueError("header too long (%d bytes)" % len(line))
    return line + payload


def decode_header(line: bytes) -> Tuple[str, Optional[str], int]:
    """Parse one header line -> ``(op, tenant, payload_bytes)``.

    Raises ``ValueError`` on anything malformed -- the server turns that
    into a connection close rather than guessing at framing.
    """
    if len(line) > MAX_HEADER_BYTES:
        raise ValueError("header too long (%d bytes)" % len(line))
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError("unparseable header: %s" % exc)
    if not isinstance(header, dict):
        raise ValueError("header must be a JSON object, got %r" % type(header))
    op = header.get("op")
    if op not in OPS:
        raise ValueError("unknown op %r" % (op,))
    tenant = None
    if op != "bye":
        tenant = validate_tenant(header.get("tenant"))
    payload_bytes = 0
    if op == "ingest":
        count = header.get("count")
        if not isinstance(count, int) or count < 0 or count > MAX_FRAME_KEYS:
            raise ValueError("bad ingest count %r" % (count,))
        payload_bytes = count * KEY_DTYPE.itemsize
    return op, tenant, payload_bytes


def batch_from_keys(keys: "np.ndarray") -> Batch:
    """Wrap decoded wire keys as the :class:`Batch` the daemon ingests.

    The wire carries flow keys only (the sketch needs nothing else);
    sizes and timestamps are synthesised as the replayer would for an
    un-timestamped trace.
    """
    n = len(keys)
    return Batch(
        keys=keys,
        sizes=np.full(n, 64.0),
        timestamps=np.zeros(n),
    )
