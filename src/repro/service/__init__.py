"""The always-on monitoring service (ROADMAP item 2).

Turns the offline trace-replay pipeline into a long-running service:

* :mod:`repro.service.records` -- the framed binary ingest wire
  protocol (JSON header line + packed int64 keys);
* :mod:`repro.service.tenants` -- per-tenant sketch namespaces under
  one memory budget: seed-derived isolation, LRU/idle eviction,
  checkpoint-on-evict, byte-exact restore;
* :mod:`repro.service.server` -- :class:`MonitoringService`: the
  asyncio ingest endpoint with real backpressure, the drainer, and the
  graceful drain/checkpoint/restore lifecycle;
* :mod:`repro.service.query` -- the REST query plane
  (``/tenants/<id>/heavy_hitters`` ``/point`` ``/entropy`` ``/change``
  ``/reports``) mounted on the telemetry HTTP server;
* :mod:`repro.service.client` -- the blocking wire client the CLI, CI
  and perf gate drive the server with.

See ``docs/SERVICE.md`` for the operational story.
"""

from repro.service.client import IngestClient
from repro.service.query import QueryRoutes
from repro.service.records import (
    MAX_FRAME_KEYS,
    MAX_HEADER_BYTES,
    batch_from_keys,
    decode_header,
    decode_keys,
    encode_frame,
    encode_keys,
    validate_tenant,
)
from repro.service.server import MonitoringService
from repro.service.tenants import (
    ServiceConfig,
    TenantManager,
    TenantState,
    tenant_stream_id,
)

__all__ = [
    "IngestClient",
    "MAX_FRAME_KEYS",
    "MAX_HEADER_BYTES",
    "MonitoringService",
    "QueryRoutes",
    "ServiceConfig",
    "TenantManager",
    "TenantState",
    "batch_from_keys",
    "decode_header",
    "decode_keys",
    "encode_frame",
    "encode_keys",
    "tenant_stream_id",
    "validate_tenant",
]
