"""A minimal blocking client for the ingest wire protocol.

Used by the CLI (``nitrosketch serve --demo``), the CI smoke job, the
chaos client-flood scenario and the perf gate.  Deliberately dumb: one
socket, stdlib only, no retries -- the interesting behaviour
(backpressure, drop accounting) lives on the server side and this
client's job is to exercise it faithfully.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Optional

from repro.service import records


class IngestClient:
    """One TCP connection speaking :mod:`repro.service.records` frames."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # Ingest is throughput-bound on large frames; let the kernel
        # coalesce. The sync/stats round trips flush naturally.
        self._file = self._sock.makefile("rb")
        self._closed = False

    def ingest(self, tenant: str, keys) -> None:
        """Send one batch of flow keys; does not wait for the server."""
        self._sock.sendall(records.encode_frame("ingest", tenant, keys))

    def sync(self, tenant: str) -> Dict:
        """Barrier: returns tenant stats once every sent batch drained."""
        self._sock.sendall(records.encode_frame("sync", tenant))
        return self._read_reply()

    def stats(self, tenant: str) -> Dict:
        """Immediate tenant stats (no drain barrier)."""
        self._sock.sendall(records.encode_frame("stats", tenant))
        return self._read_reply()

    def bye(self) -> Optional[Dict]:
        """Polite goodbye; returns the server's ack (None if it's gone)."""
        try:
            self._sock.sendall(records.encode_frame("bye"))
            return self._read_reply()
        except (OSError, ValueError):
            return None

    def _read_reply(self) -> Dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "IngestClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.bye()
        self.close()
