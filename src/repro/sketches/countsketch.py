"""Count Sketch (Charikar, Chen & Farach-Colton 2002, paper ref [17]).

The canonical L2-guarantee sketch: signed ±1 updates, point query =
median over rows of ``C[i][h_i(x)] * g_i(x)``.  With ``w = O(1/eps**2)``
and ``d = O(log(1/delta))`` the estimate satisfies
``|est - f_x| <= eps * L2`` with probability ``1 - delta``.

Count Sketch also doubles as an AMS L2 estimator: the median across rows
of the sum of squared counters is a ``(1 +- eps)`` approximation of
``L2**2`` (used by AlwaysCorrect NitroSketch's convergence test and by
UnivMon's G-sum machinery).

Paper configuration: 5 rows x 10000 counters inside UnivMon (Figure 2),
5 x 102400 / 2 MB standalone (Section 7 parameters).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.sketches.base import CanonicalSketch


class CountSketch(CanonicalSketch):
    """Count Sketch: signed updates, median-of-rows query."""

    def __init__(
        self, depth: int, width: int, seed: int = 0, hash_family: str = "multiply_shift"
    ) -> None:
        super().__init__(depth, width, seed, signed=True, hash_family=hash_family)

    def combine_rows(self, estimates: List[float]) -> float:
        ordered = sorted(estimates)
        return ordered[(len(ordered) - 1) // 2]

    def _combine_rows_batch(self, estimates: "np.ndarray") -> "np.ndarray":
        # Lower median, matching combine_rows (np.median would average
        # the middle pair for even depths).
        return np.sort(estimates, axis=0)[(estimates.shape[0] - 1) // 2]

    def l2_estimate(self) -> float:
        """``sqrt`` of the AMS median-of-rows L2² estimator."""
        return math.sqrt(max(self.l2_squared_estimate(), 0.0))

    @classmethod
    def from_error_bounds(cls, epsilon: float, delta: float, seed: int = 0) -> "CountSketch":
        """Size the sketch for an ``epsilon * L2`` error with prob. ``1-delta``.

        Uses the standard ``w = ceil(3 / eps**2)``, ``d = ceil(ln(1/delta))``
        sizing (constants per [17]).
        """
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1), got %r" % (epsilon,))
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1), got %r" % (delta,))
        width = int(math.ceil(3.0 / (epsilon * epsilon)))
        depth = max(1, int(math.ceil(math.log(1.0 / delta))))
        return cls(depth, width, seed)
