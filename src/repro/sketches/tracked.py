"""A canonical sketch bundled with a top-k key store.

Vanilla sketches answer point queries but cannot *enumerate* heavy
flows; deployments therefore pair them with a TopKeys structure
(paper Section 3, Bottleneck 3).  :class:`TrackedSketch` is that
pairing for any canonical sketch -- the vanilla counterpart of what
:class:`repro.core.NitroSketch` provides internally, and the unit the
throughput figures run when they say "Count-Min Sketch" or "K-ary".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.sketches.base import CanonicalSketch
from repro.sketches.topk import TopK


class TrackedSketch:
    """``sketch + TopK``: per-packet update, estimate, heap offer."""

    def __init__(self, sketch: CanonicalSketch, k: int = 100) -> None:
        self.sketch = sketch
        self.topk = TopK(k)

    @property
    def ops(self):
        return self.sketch.ops

    @ops.setter
    def ops(self, sink) -> None:
        self.sketch.ops = sink
        self.topk.ops = sink

    @property
    def depth(self) -> int:
        return self.sketch.depth

    def update(self, key: int, weight: float = 1.0) -> None:
        """Update all rows and offer the fresh estimate to the heap."""
        estimate = self.sketch.update_and_estimate(key, weight)
        self.topk.offer(key, estimate)

    def update_many(self, keys) -> None:
        for key in keys:
            self.update(key)

    def update_batch(self, keys: "np.ndarray", weights: Optional["np.ndarray"] = None) -> None:
        """Vectorised ingest; the heap is refreshed with final estimates."""
        keys = np.asarray(keys)
        if len(keys) == 0:
            return
        self.sketch.update_batch(keys, weights)
        unique = np.unique(keys)
        # Scalar ingest probes the top-keys table once per packet; the
        # batch path only offers distinct keys, so bill the difference to
        # keep operation counts faithful to the per-packet workflow.
        self.sketch.ops.table_lookup(len(keys) - len(unique))
        estimates = self.sketch.query_batch(unique)
        for key, estimate in zip(unique.tolist(), estimates.tolist()):
            self.topk.offer(int(key), float(estimate))

    def query(self, key: int) -> float:
        return self.sketch.query(key)

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Tracked flows with a fresh estimate above ``threshold``."""
        tracked = list(self.topk.keys())
        if not tracked:
            return []
        estimates = self.sketch.query_batch(np.asarray(tracked))
        hitters = [
            (key, float(est))
            for key, est in zip(tracked, estimates.tolist())
            if est > threshold
        ]
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def memory_bytes(self) -> int:
        return self.sketch.memory_bytes() + self.topk.memory_bytes()

    def reset(self) -> None:
        self.sketch.reset()
        self.topk.reset()
