"""Bloom filters (plain and counting).

Membership filters are a workhorse of the measurement stacks the paper
cites (e.g. the sliding Bloom filter of [6] for distinct/entropy over
windows, and flow-table admission front-ends).  Two classic variants:

* :class:`BloomFilter` -- k hash functions over an m-bit array; no
  false negatives, false-positive rate ``(1 - e^{-kn/m})^k``.
* :class:`CountingBloomFilter` -- 4-bit-style counters instead of bits,
  supporting deletions (the form flow tables use to expire entries).

Both use the standard double-hashing construction
``h_i(x) = h1(x) + i*h2(x) mod m`` (Kirsch & Mitzenmacher), so each
update costs two base hashes regardless of k.
"""

from __future__ import annotations

import math
import numpy as np

from repro.hashing.families import MultiplyShiftHash, derive_seeds
from repro.metrics.opcount import NULL_OPS


def optimal_parameters(expected_items: int, false_positive_rate: float):
    """(bits, hashes) minimising memory for a target FP rate."""
    if expected_items < 1:
        raise ValueError("expected_items must be >= 1")
    if not 0 < false_positive_rate < 1:
        raise ValueError("false_positive_rate must be in (0, 1)")
    bits = int(
        math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2))
    )
    hashes = max(1, round(bits / expected_items * math.log(2)))
    return bits, hashes


class BloomFilter:
    """Standard Bloom filter with double hashing."""

    def __init__(self, bits: int, hashes: int = 4, seed: int = 0) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1")
        if hashes < 1:
            raise ValueError("hashes must be >= 1")
        self.bits = bits
        self.hashes = hashes
        self.ops = NULL_OPS
        seeds = derive_seeds(seed, 2)
        self._h1 = MultiplyShiftHash(bits, seeds[0])
        self._h2 = MultiplyShiftHash(max(bits - 1, 1), seeds[1])
        self._array = np.zeros(bits, dtype=bool)
        self.items_added = 0

    @classmethod
    def for_capacity(
        cls, expected_items: int, false_positive_rate: float = 0.01, seed: int = 0
    ) -> "BloomFilter":
        bits, hashes = optimal_parameters(expected_items, false_positive_rate)
        return cls(bits, hashes, seed)

    def _positions(self, key: int):
        base = self._h1(key)
        step = self._h2(key) + 1  # nonzero step keeps probes distinct
        return [(base + i * step) % self.bits for i in range(self.hashes)]

    def add(self, key: int) -> None:
        self.ops.hash(2)
        self.ops.counter_update(self.hashes)
        for position in self._positions(key):
            self._array[position] = True
        self.items_added += 1

    def __contains__(self, key: int) -> bool:
        self.ops.hash(2)
        return all(self._array[position] for position in self._positions(key))

    def expected_false_positive_rate(self) -> float:
        """The analytic FP rate at the current fill."""
        fill = float(np.count_nonzero(self._array)) / self.bits
        return fill**self.hashes

    def memory_bytes(self) -> int:
        return (self.bits + 7) // 8

    def reset(self) -> None:
        self._array.fill(False)
        self.items_added = 0


class CountingBloomFilter:
    """Bloom filter with small counters, supporting removal."""

    def __init__(
        self, counters: int, hashes: int = 4, seed: int = 0, counter_bits: int = 4
    ) -> None:
        if counters < 1:
            raise ValueError("counters must be >= 1")
        if hashes < 1:
            raise ValueError("hashes must be >= 1")
        self.counters = counters
        self.hashes = hashes
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.ops = NULL_OPS
        seeds = derive_seeds(seed ^ 0xCB, 2)
        self._h1 = MultiplyShiftHash(counters, seeds[0])
        self._h2 = MultiplyShiftHash(max(counters - 1, 1), seeds[1])
        self._array = np.zeros(counters, dtype=np.int32)

    def _positions(self, key: int):
        base = self._h1(key)
        step = self._h2(key) + 1
        return [(base + i * step) % self.counters for i in range(self.hashes)]

    def add(self, key: int) -> None:
        self.ops.hash(2)
        self.ops.counter_update(self.hashes)
        for position in self._positions(key):
            if self._array[position] < self.max_count:
                self._array[position] += 1

    def remove(self, key: int) -> None:
        """Remove one previous insertion of ``key``.

        Removing a key that was never added corrupts the filter (the
        classic counting-Bloom caveat); callers must pair adds/removes.
        """
        self.ops.hash(2)
        self.ops.counter_update(self.hashes)
        for position in self._positions(key):
            if self._array[position] > 0:
                self._array[position] -= 1

    def __contains__(self, key: int) -> bool:
        self.ops.hash(2)
        return all(self._array[position] > 0 for position in self._positions(key))

    def memory_bytes(self) -> int:
        return (self.counters * self.counter_bits + 7) // 8

    def reset(self) -> None:
        self._array.fill(0)
