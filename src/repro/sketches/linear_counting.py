"""Linear counting for distinct-flow (cardinality) estimation.

Whang, Vander-Zanden & Taylor (1990): hash each key to one bit of an
``m``-bit bitmap; estimate the number of distinct keys as

    n_hat = -m * ln(V)        where V = fraction of zero bits.

ElasticSketch estimates distinct flows by linear counting over its
Count-Min light part; Figure 3(b) of the NitroSketch paper shows the
failure mode this reproduction must exhibit: once the number of flows
approaches/exceeds the bitmap capacity the zero fraction collapses to 0,
``ln(V)`` blows up, and relative error exceeds 100%.  We therefore keep
the saturation behaviour explicit rather than clamping it away.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.families import MultiplyShiftHash
from repro.metrics.opcount import NULL_OPS


class LinearCounter:
    """Bitmap cardinality estimator."""

    def __init__(self, bits: int, seed: int = 0) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1, got %d" % bits)
        self.bits = bits
        self.ops = NULL_OPS
        self._hash = MultiplyShiftHash(bits, seed)
        self._bitmap = np.zeros(bits, dtype=bool)

    def update(self, key: int) -> None:
        self.ops.packet()
        self.ops.hash()
        self.ops.counter_update()
        self._bitmap[self._hash(key)] = True

    def update_batch(self, keys: "np.ndarray") -> None:
        keys = np.asarray(keys)
        self.ops.packet(len(keys))
        self.ops.hash(len(keys))
        self.ops.counter_update(len(keys))
        self._bitmap[self._hash.batch(keys)] = True

    def zero_fraction(self) -> float:
        """Fraction of bits still zero."""
        return float(np.count_nonzero(~self._bitmap)) / self.bits

    def is_saturated(self) -> bool:
        """True when every bit is set and the estimator is undefined."""
        return bool(self._bitmap.all())

    def estimate(self) -> float:
        """Estimated distinct-key count.

        When the bitmap saturates the mathematical estimate is infinite;
        we return ``inf`` so callers (and Figure 3b) see the overflow the
        paper describes instead of a silently clamped value.
        """
        zero_fraction = self.zero_fraction()
        if zero_fraction == 0.0:
            return math.inf
        return -self.bits * math.log(zero_fraction)

    def memory_bytes(self) -> int:
        return (self.bits + 7) // 8

    def reset(self) -> None:
        self._bitmap.fill(False)
