"""K-ary sketch for change detection (Krishnamurthy et al. 2003, ref [51]).

Structurally a ``d x w`` unsigned counter grid, but the point estimator
removes the per-bucket background mass:

    est_i(x) = (C[i][h_i(x)] - m/w) / (1 - 1/w),      est = median_i est_i

where ``m`` is the total stream weight.  This unbiased estimator is what
lets the K-ary sketch detect *heavy changers*: build one sketch per epoch,
subtract (the structure is linear), and query the difference sketch.

The paper runs K-ary as one of the four NitroSketch-accelerated sketches
(10 rows x 51200 counters / 2 MB, Section 7 parameters) and uses it for
the change-detection task in Figure 12.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sketches.base import CanonicalSketch


class KArySketch(CanonicalSketch):
    """K-ary sketch: unsigned updates, mean-corrected median query."""

    def __init__(
        self, depth: int, width: int, seed: int = 0, hash_family: str = "multiply_shift"
    ) -> None:
        super().__init__(depth, width, seed, signed=False, hash_family=hash_family)
        self.total = 0.0

    def row_update(self, row: int, key: int, increment: float) -> None:
        # All updates (vanilla and NitroSketch row-sampled) flow through
        # here.  Each row sees an unbiased p^-1-scaled share of the stream,
        # so accumulating increment/depth keeps E[total] equal to the true
        # stream weight under both update disciplines.
        super().row_update(row, key, increment)
        self.total += increment / self.depth

    def update_batch(
        self,
        keys: "np.ndarray",
        weights: Optional["np.ndarray"] = None,
        count_packets: bool = True,
    ) -> None:
        keys = np.asarray(keys)
        super().update_batch(keys, weights, count_packets=count_packets)
        if weights is None:
            self.total += float(len(keys))
        else:
            self.total += float(np.sum(weights))

    def note_batch_mass(self, mass: float) -> None:
        # Each row_update would have added increment/depth; a batch that
        # applied ``mass`` total increments contributes mass/depth.
        self.total += mass / self.depth

    def combine_rows(self, estimates: List[float]) -> float:
        ordered = sorted(estimates)
        return ordered[(len(ordered) - 1) // 2]

    def _combine_rows_batch(self, estimates: "np.ndarray") -> "np.ndarray":
        return np.sort(estimates, axis=0)[(estimates.shape[0] - 1) // 2]

    def row_estimate(self, row: int, key: int) -> float:
        bucket = self.row_hashes[row](key)
        raw = self.counters[row, bucket]
        if self.width == 1:
            return raw
        return (raw - self.total / self.width) / (1.0 - 1.0 / self.width)

    def query_batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised mean-corrected point queries.

        Mirrors the scalar path exactly, including its op accounting:
        K-ary's ``row_estimate`` reads counters without billing a hash
        (the correction reuses the update-time hash values), so the
        batch variant bills nothing either.
        """
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.zeros(0, dtype=np.float64)
        raw = self.kernel.estimate_matrix(keys)
        if self.width > 1:
            raw = (raw - self.total / self.width) / (1.0 - 1.0 / self.width)
        return self._combine_rows_batch(raw)

    def difference(self, other: "KArySketch") -> "KArySketch":
        """Return the (self - other) sketch for change detection.

        Both sketches must share seed and shape.  The result's queries
        estimate ``f_x(self) - f_x(other)``.
        """
        if (
            other.depth != self.depth
            or other.width != self.width
            or other.seed != self.seed
        ):
            raise ValueError("can only subtract sketches with identical configuration")
        diff = KArySketch(self.depth, self.width, self.seed)
        diff.counters = self.counters - other.counters
        diff.total = self.total - other.total
        return diff

    def check_invariants(self) -> List[str]:
        """Mass conservation on top of the base structural checks.

        Every update path (scalar ``row_update``, the fused batch kernel
        plus :meth:`note_batch_mass`, merges and differences) must keep
        ``total == sum(counters) / depth`` -- each row absorbs the full
        stream mass, and ``total`` accumulates a ``1/depth`` share per
        row touch.  A drifting total silently biases every mean-corrected
        estimate.
        """
        violations = super().check_invariants()
        counter_mass = float(np.sum(self.counters)) / self.depth
        tolerance = 1e-6 * max(1.0, abs(counter_mass))
        if abs(self.total - counter_mass) > tolerance:
            violations.append(
                "kary: tracked total %.9g != counter mass %.9g (tol %.3g)"
                % (self.total, counter_mass, tolerance)
            )
        return violations

    def reset(self) -> None:
        super().reset()
        self.total = 0.0
