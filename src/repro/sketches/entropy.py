"""Streaming entropy estimation (Lall et al. 2006, paper ref [52]).

The paper's entropy-estimation task ("approximate the entropy of
different header distributions (e.g., [52])") references this algorithm:

* keep ``z`` independent reservoir samples of stream *positions*;
* for each sampled position, count how many times its key re-appears in
  the remainder of the stream (the count ``r``);
* ``X = m * (r*log2(r) - (r-1)*log2(r-1))`` is an unbiased estimator of
  ``S = sum_x f_x log2 f_x``; averaging groups and taking the median
  gives the standard (eps, delta) guarantee;
* the entropy follows as ``H = log2(m) - S/m``.

This standalone estimator complements UnivMon's G-sum entropy: it is
the specialised one-task sketch the paper's generality argument
contrasts against (one structure per statistic vs one structure for
all), and the tests compare the two against ground truth.
"""

from __future__ import annotations

import math
import numpy as np

from repro.metrics.opcount import NULL_OPS


class EntropySketch:
    """Lall et al. streaming entropy estimator.

    Parameters
    ----------
    estimators:
        Number of reservoir estimators ``z`` (grouped as g groups of
        ``group_size``; defaults give ~400 estimators, plenty below 5%
        error on realistic traces).
    group_size:
        Estimators averaged per group before the median (variance
        reduction; the classic c1=O(1/eps^2), c2=O(log 1/delta) split).
    """

    def __init__(
        self, estimators: int = 400, group_size: int = 40, seed: int = 0
    ) -> None:
        if estimators < 1:
            raise ValueError("estimators must be >= 1, got %d" % estimators)
        if group_size < 1 or group_size > estimators:
            raise ValueError("group_size must be in [1, estimators]")
        self.estimators = estimators
        self.group_size = group_size
        self.ops = NULL_OPS
        self._rng = np.random.default_rng(seed ^ 0xE27)
        self._tracked = np.full(estimators, -1, dtype=np.int64)
        self._counts = np.zeros(estimators, dtype=np.int64)
        self.total = 0

    def update(self, key: int, weight: float = 1.0) -> None:
        """Process one packet (``weight`` must be 1; position sampling
        is defined over packets)."""
        if weight != 1.0:
            raise ValueError("EntropySketch counts packets; weight must be 1")
        self.ops.packet()
        self.total += 1
        # Count re-appearances for every estimator tracking this key.
        matches = self._tracked == key
        self._counts[matches] += 1
        self.ops.counter_update(int(np.count_nonzero(matches)))
        # Independent reservoir step: each estimator resamples the current
        # position with probability 1/t.
        self.ops.prng()
        replace = self._rng.random(self.estimators) < (1.0 / self.total)
        if np.any(replace):
            self._tracked[replace] = key
            self._counts[replace] = 1
            self.ops.counter_update(int(np.count_nonzero(replace)))

    def update_many(self, keys) -> None:
        for key in keys:
            self.update(int(key))

    def update_batch(self, keys: "np.ndarray") -> None:
        """Chunked ingest (the reservoir step is inherently sequential,
        but the re-appearance counting vectorises per packet)."""
        for key in np.asarray(keys).tolist():
            self.update(int(key))

    def s_estimate(self) -> float:
        """Median-of-group-means estimate of ``sum f log2 f``."""
        if self.total == 0:
            return 0.0
        r = self._counts.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            x = r * np.log2(np.maximum(r, 1.0)) - (r - 1) * np.log2(
                np.maximum(r - 1, 1.0)
            )
        x *= self.total
        groups = self.estimators // self.group_size
        if groups < 1:
            return float(np.mean(x))
        means = x[: groups * self.group_size].reshape(groups, self.group_size).mean(axis=1)
        return float(np.median(means))

    def entropy_estimate(self) -> float:
        """Shannon entropy (bits) of the flow-size distribution."""
        if self.total == 0:
            return 0.0
        return max(math.log2(self.total) - self.s_estimate() / self.total, 0.0)

    def memory_bytes(self) -> int:
        return self.estimators * 16  # key + counter per estimator

    def reset(self) -> None:
        self._tracked.fill(-1)
        self._counts.fill(0)
        self.total = 0
