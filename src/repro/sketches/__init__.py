"""Vanilla sketching algorithms -- the substrate NitroSketch accelerates.

Canonical multi-row sketches (wrappable by NitroSketch):

* :class:`CountMinSketch` -- L1 guarantee, min-of-rows (ref [27]).
* :class:`CountSketch` -- L2 guarantee, median-of-rows (ref [17]).
* :class:`KArySketch` -- change detection, mean-corrected median ([51]).
* :class:`UnivMon` -- universal sketch over sampled substreams ([55]).

Supporting structures:

* :class:`TopK` -- heavy-key heap (the paper's "TopKeys").
* :class:`MisraGries` -- deterministic HH summary (SketchVisor's basis).
* :class:`LinearCounter` / :class:`HyperLogLog` -- cardinality estimators.

Strawman baselines from Section 4.1:

* :class:`OneArrayCountSketch` -- Strawman 1 (single huge array).
* :class:`UniformSampledSketch` -- Strawman 2 (per-packet coin flips).
"""

from repro.sketches.base import Sketch, CanonicalSketch
from repro.sketches.topk import TopK
from repro.sketches.tracked import TrackedSketch
from repro.sketches.countmin import CountMinSketch, ConservativeCountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch
from repro.sketches.univmon import (
    UnivMon,
    HeavyHitterSketch,
    paper_widths,
    g_entropy,
    g_distinct,
    g_l2_squared,
    g_l1,
)
from repro.sketches.misra_gries import MisraGries
from repro.sketches.spacesaving import SpaceSaving
from repro.sketches.entropy import EntropySketch
from repro.sketches.bloom import BloomFilter, CountingBloomFilter, optimal_parameters
from repro.sketches.linear_counting import LinearCounter
from repro.sketches.hll import HyperLogLog
from repro.sketches.one_array import OneArrayCountSketch
from repro.sketches.sampled import UniformSampledSketch

__all__ = [
    "Sketch",
    "CanonicalSketch",
    "TopK",
    "TrackedSketch",
    "CountMinSketch",
    "ConservativeCountMinSketch",
    "CountSketch",
    "KArySketch",
    "UnivMon",
    "HeavyHitterSketch",
    "paper_widths",
    "g_entropy",
    "g_distinct",
    "g_l2_squared",
    "g_l1",
    "MisraGries",
    "SpaceSaving",
    "EntropySketch",
    "BloomFilter",
    "CountingBloomFilter",
    "optimal_parameters",
    "LinearCounter",
    "HyperLogLog",
    "OneArrayCountSketch",
    "UniformSampledSketch",
]
