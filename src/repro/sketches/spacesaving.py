"""Space-Saving heavy-hitter summary (Metwally et al. 2005, paper ref [61]).

The other classic deterministic HH algorithm (alongside Misra-Gries):
maintain ``k`` counters; a miss on a full table *overwrites* the
minimum-count entry, with the newcomer inheriting the victim's count as
its error bound.  Guarantees ``f_x <= est <= f_x + m/k`` -- an
over-estimating mirror image of MG's under-estimation.

Included as a substrate because [61] is among the heavy-hitter
algorithms the paper's task taxonomy cites, because the HHH baselines
([64]) are built from Space-Saving instances, and because it makes a
useful third point of comparison in the ablation benches (deterministic
per-key state vs randomized counter sharing).

Implemented with the same lazy min-heap trick as :class:`TopK` so
updates stay O(log k).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.sketches.base import Sketch


class SpaceSaving(Sketch):
    """Space-Saving: k counters, overwrite-the-minimum eviction."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        self.k = k
        self._counts: Dict[int, float] = {}
        self._errors: Dict[int, float] = {}
        self._heap: List[Tuple[float, int]] = []

    def update(self, key: int, weight: float = 1.0) -> None:
        self.ops.packet()
        self.ops.table_lookup()
        counts = self._counts
        if key in counts:
            counts[key] += weight
            heapq.heappush(self._heap, (counts[key], key))
            self.ops.counter_update()
            return
        if len(counts) < self.k:
            counts[key] = weight
            self._errors[key] = 0.0
            heapq.heappush(self._heap, (weight, key))
            self.ops.counter_update()
            return
        victim_key, victim_count = self._pop_min()
        del counts[victim_key]
        del self._errors[victim_key]
        counts[key] = victim_count + weight
        self._errors[key] = victim_count
        heapq.heappush(self._heap, (victim_count + weight, key))
        self.ops.heap_op()
        self.ops.counter_update(2)

    def _pop_min(self) -> Tuple[int, float]:
        """Pop the minimum-count entry, skipping stale heap snapshots."""
        while self._heap:
            count, key = heapq.heappop(self._heap)
            if self._counts.get(key) == count:
                return key, count
        raise RuntimeError("eviction requested on an empty Space-Saving table")

    def query(self, key: int) -> float:
        """Upper-bound estimate (0 for untracked keys)."""
        return self._counts.get(key, 0.0)

    def guaranteed(self, key: int) -> float:
        """Lower bound: count minus the inherited error."""
        if key not in self._counts:
            return 0.0
        return self._counts[key] - self._errors[key]

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Keys whose guaranteed count exceeds ``threshold``, largest first."""
        hitters = [
            (key, self._counts[key])
            for key in self._counts
            if self.guaranteed(key) > threshold
        ]
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def items(self) -> List[Tuple[int, float]]:
        """Tracked (key, count) pairs, largest first."""
        return sorted(self._counts.items(), key=lambda item: (-item[1], item[0]))

    def memory_bytes(self) -> int:
        return self.k * 24  # key + count + error

    def reset(self) -> None:
        self._counts.clear()
        self._errors.clear()
        self._heap.clear()
