"""Strawman 2: uniform packet sampling in front of a sketch (Section 4.1).

"Run sketch only over sampled packets": flip one coin per packet with
probability ``p``; sampled packets update *all* rows of the underlying
sketch, and queries are scaled by ``p**-1``.  The paper's Appendix B
proves this needs asymptotically more space than NitroSketch's
counter-array sampling for the same guarantee --
``Omega(eps^-2 p^-1 log(1/delta) + eps^-2 p^-1.5 m^-0.5 log^1.5(1/delta))``
-- because all rows see the *same* sampled substream, whose L2 inflation
is correlated across rows.

This class is the experimental counterpart of that analysis and the
ablation baseline for Idea A.  It also demonstrates the per-packet PRNG
cost the geometric trick removes: one ``prng_draw`` is recorded per
packet regardless of the sampling outcome.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hashing.prng import XorShift64Star
from repro.sketches.base import CanonicalSketch


class UniformSampledSketch:
    """Uniform per-packet sampling wrapper around a canonical sketch.

    Parameters
    ----------
    sketch:
        The wrapped canonical sketch (all rows updated per sampled packet).
    probability:
        Per-packet sampling probability ``p``.
    scale_updates:
        When True (default) each sampled update is pre-scaled by ``p**-1``
        so queries read directly in stream units; when False the scaling
        happens at query time instead.  Both are unbiased.
    """

    def __init__(
        self,
        sketch: CanonicalSketch,
        probability: float,
        seed: int = 0,
        scale_updates: bool = True,
    ) -> None:
        if not 0 < probability <= 1:
            raise ValueError("probability must be in (0, 1], got %r" % (probability,))
        self.sketch = sketch
        self.probability = probability
        self.scale_updates = scale_updates
        self._rng = XorShift64Star(seed or 0x5EED)
        self.packets_seen = 0
        self.packets_sampled = 0

    @property
    def ops(self):
        return self.sketch.ops

    @ops.setter
    def ops(self, sink) -> None:
        self.sketch.ops = sink

    def update(self, key: int, weight: float = 1.0) -> None:
        """One coin flip per packet; sampled packets pay the full d-row cost."""
        self.packets_seen += 1
        self.ops.packet()
        self.ops.prng()
        if self._rng.next_float() >= self.probability:
            return
        self.packets_sampled += 1
        scale = 1.0 / self.probability if self.scale_updates else 1.0
        for row in range(self.sketch.depth):
            self.sketch.row_update(row, key, weight * scale)

    def update_batch(self, keys: "np.ndarray", weights: Optional["np.ndarray"] = None) -> None:
        """Vectorised variant: one uniform draw per packet, then batch update."""
        keys = np.asarray(keys)
        count = len(keys)
        self.packets_seen += count
        self.ops.packet(count)
        self.ops.prng(count)
        draws = np.array([self._rng.next_float() for _ in range(count)])
        mask = draws < self.probability
        sampled = keys[mask]
        self.packets_sampled += int(np.count_nonzero(mask))
        if len(sampled) == 0:
            return
        scale = 1.0 / self.probability if self.scale_updates else 1.0
        if weights is None:
            batch_weights = np.full(len(sampled), scale)
        else:
            batch_weights = np.asarray(weights, dtype=np.float64)[mask] * scale
        # The batch is already billed as packets above; the inner update
        # must not recount the sampled subset.
        self.sketch.update_batch(sampled, batch_weights, count_packets=False)

    def query(self, key: int) -> float:
        estimate = self.sketch.query(key)
        if self.scale_updates:
            return estimate
        return estimate / self.probability

    def memory_bytes(self) -> int:
        return self.sketch.memory_bytes()

    def reset(self) -> None:
        self.sketch.reset()
        self.packets_seen = 0
        self.packets_sampled = 0
