"""HyperLogLog cardinality estimator (Flajolet et al. 2007).

A robust distinct-counting substrate: ``2**precision`` registers, each
holding the maximum leading-zero rank seen in its substream.  Unlike
linear counting (which ElasticSketch relies on and which overflows --
Figure 3b), HyperLogLog's error stays ``~1.04/sqrt(m)`` for arbitrarily
many flows.  The repository uses it as the robust comparison point for
the distinct-flows task and inside example applications.

Includes the standard small-range (linear counting) correction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.tabulation import TabulationHash
from repro.metrics.opcount import NULL_OPS


def _alpha(m: int) -> float:
    """Bias-correction constant for ``m`` registers."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """HyperLogLog with ``2**precision`` 6-bit registers."""

    def __init__(self, precision: int = 12, seed: int = 0) -> None:
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in [4, 18], got %d" % precision)
        self.precision = precision
        self.num_registers = 1 << precision
        self.ops = NULL_OPS
        self._hash = TabulationHash(seed)
        self._registers = np.zeros(self.num_registers, dtype=np.uint8)

    def update(self, key: int) -> None:
        self.ops.packet()
        self.ops.hash()
        h = self._hash.hash64(key)
        register = h >> (64 - self.precision)
        remainder = h & ((1 << (64 - self.precision)) - 1)
        # Rank = position of the leftmost 1-bit in the remainder (1-based).
        rank = (64 - self.precision) - remainder.bit_length() + 1
        if rank > self._registers[register]:
            self._registers[register] = rank
            self.ops.counter_update()

    def update_batch(self, keys: "np.ndarray") -> None:
        """Vectorised ingest of an integer key array."""
        keys = np.asarray(keys)
        self.ops.packet(len(keys))
        self.ops.hash(len(keys))
        hashes = self._hash.batch(keys)
        registers = (hashes >> np.uint64(64 - self.precision)).astype(np.int64)
        remainder_bits = 64 - self.precision
        remainders = hashes & np.uint64((1 << remainder_bits) - 1)
        # bit_length via log2; remainders of 0 get the maximal rank.
        with np.errstate(divide="ignore"):
            lengths = np.where(
                remainders > 0,
                np.floor(np.log2(remainders.astype(np.float64))).astype(np.int64) + 1,
                0,
            )
        ranks = (remainder_bits - lengths + 1).astype(np.uint8)
        np.maximum.at(self._registers, registers, ranks)

    def estimate(self) -> float:
        """Estimated number of distinct keys."""
        m = self.num_registers
        registers = self._registers.astype(np.float64)
        raw = _alpha(m) * m * m / float(np.sum(np.exp2(-registers)))
        zeros = int(np.count_nonzero(self._registers == 0))
        if raw <= 2.5 * m and zeros > 0:
            # Small-range correction: fall back to linear counting.
            return m * math.log(m / zeros)
        return raw

    def merge(self, other: "HyperLogLog") -> None:
        """Register-wise max merge (requires identical precision and seed)."""
        if other.precision != self.precision:
            raise ValueError("cannot merge HLLs with different precision")
        np.maximum(self._registers, other._registers, out=self._registers)

    def memory_bytes(self) -> int:
        return self.num_registers  # one byte per register

    def reset(self) -> None:
        self._registers.fill(0)
