"""UnivMon universal sketch (Liu et al., SIGCOMM 2016, paper ref [55]).

UnivMon answers *many* measurement tasks from one data structure by
maintaining ``L`` levels of progressively subsampled substreams:

* level 0 sees every packet;
* level ``j`` sees the keys whose sampling hashes ``h_1..h_j`` are all 1,
  i.e. an (expected) ``2**-j`` fraction of distinct keys;
* every level runs a Count Sketch plus a top-k heavy-hitter heap over its
  substream.

Any G-sum statistic ``sum_x g(f_x)`` (entropy, distinct count, frequency
moments, ...) is then estimated with the recursive Recursive Sum
Algorithm:

    Y_L = sum_{x in Q_L} g(f_x(L))
    Y_j = 2 * Y_{j+1} + sum_{x in Q_j} g(f_x(j)) * (1 - 2*h_{j+1}(x))

where ``Q_j`` is level j's heavy-hitter set, ``f_x(j)`` its Count-Sketch
estimate, and ``h_{j+1}(x)`` the next level's sampling bit.

The per-level frequency estimator is pluggable (``level_factory``) so the
NitroSketch core can substitute its accelerated Count Sketch per level --
exactly how the paper integrates the two systems ("replacing each Count
Sketch instance in UnivMon with ... NitroSketch", Section 8).
"""

from __future__ import annotations

import math
from typing import Callable, List, Tuple

import numpy as np

from repro.hashing.families import derive_seeds
from repro.hashing.tabulation import TabulationHash
from repro.metrics.opcount import NULL_OPS
from repro.sketches.countsketch import CountSketch
from repro.sketches.topk import TopK

# ---------------------------------------------------------------------------
# G-functions for the G-sum estimator.
# ---------------------------------------------------------------------------


def g_entropy(frequency: float) -> float:
    """``g(f) = f * log2(f)`` -- yields Shannon entropy via
    ``H = log2(m) - Gsum/m`` (Lall et al. [52])."""
    if frequency <= 1.0:
        return 0.0
    return frequency * math.log2(frequency)


def g_distinct(frequency: float) -> float:
    """``g(f) = 1 if f >= ~1 else 0`` -- counts distinct flows (F0)."""
    return 1.0 if frequency >= 0.5 else 0.0


def g_l2_squared(frequency: float) -> float:
    """``g(f) = f**2`` -- the second frequency moment F2."""
    return frequency * frequency


def g_l1(frequency: float) -> float:
    """``g(f) = f`` -- total traffic (sanity-check statistic)."""
    return max(frequency, 0.0)


# ---------------------------------------------------------------------------
# Per-level heavy-hitter estimator.
# ---------------------------------------------------------------------------


class HeavyHitterSketch:
    """A Count Sketch paired with a top-k key store.

    This is the vanilla per-level unit of UnivMon (Figure 7a): every
    update touches all sketch rows, then queries the sketch and offers the
    estimate to the heap.  The NitroSketch wrapper in
    :mod:`repro.core.nitro` exposes the same interface, which is what lets
    UnivMon swap it in transparently.
    """

    def __init__(self, depth: int, width: int, k: int, seed: int = 0) -> None:
        self.sketch = CountSketch(depth, width, seed)
        self.topk = TopK(k)

    @property
    def ops(self):
        return self.sketch.ops

    @ops.setter
    def ops(self, sink) -> None:
        self.sketch.ops = sink
        self.topk.ops = sink

    def update(self, key: int, weight: float = 1.0) -> None:
        estimate = self.sketch.update_and_estimate(key, weight)
        self.topk.offer(key, estimate)

    def update_batch(self, keys, weights=None, duration_seconds=None) -> None:
        """Vectorised level update (Idea-D analogue for vanilla levels).

        Counter state is identical to per-packet updates; the top-k store
        is refreshed with each distinct key's *final* estimate, which can
        only improve on the online offers (estimates grow monotonically
        in expectation).
        """
        keys = np.asarray(keys)
        if len(keys) == 0:
            return
        self.sketch.update_batch(keys, weights)
        unique = np.unique(keys)
        # Bill the per-packet top-keys probes the scalar workflow performs
        # (the batch path only offers each distinct key once).
        self.sketch.ops.table_lookup(len(keys) - len(unique))
        estimates = self.sketch.query_batch(unique)
        for key, estimate in zip(unique.tolist(), estimates.tolist()):
            self.topk.offer(int(key), float(estimate))

    def query(self, key: int) -> float:
        return self.sketch.query(key)

    def top_items(self) -> List[Tuple[int, float]]:
        """Tracked (key, estimate) pairs with *fresh* sketch estimates."""
        return [(key, self.sketch.query(key)) for key in self.topk.keys()]

    def l2_estimate(self) -> float:
        return self.sketch.l2_estimate()

    def memory_bytes(self) -> int:
        return self.sketch.memory_bytes() + self.topk.memory_bytes()

    def reset(self) -> None:
        self.sketch.reset()
        self.topk.reset()


LevelFactory = Callable[[int, int, int, int, int], HeavyHitterSketch]
"""Signature: ``factory(level, depth, width, k, seed) -> estimator``."""


def default_level_factory(
    level: int, depth: int, width: int, k: int, seed: int
) -> HeavyHitterSketch:
    """Build a vanilla Count-Sketch + heap level."""
    return HeavyHitterSketch(depth, width, k, seed)


# ---------------------------------------------------------------------------
# UnivMon proper.
# ---------------------------------------------------------------------------


class UnivMon:
    """The universal sketch.

    Parameters
    ----------
    levels:
        Number of substream levels ``L`` (paper uses ~log2 of the key
        universe; 14-16 is typical).
    depth:
        Rows per Count Sketch (5 in the paper's configuration).
    widths:
        Either one width for all levels or a per-level sequence.  The
        paper sizes the first levels larger (4MB/2MB/1MB/500KB then
        250KB); :func:`paper_widths` reproduces that scheme.
    k:
        Heavy hitters tracked per level.
    level_factory:
        Hook to substitute the per-level estimator (NitroSketch uses it).
    """

    def __init__(
        self,
        levels: int = 14,
        depth: int = 5,
        widths=10000,
        k: int = 100,
        seed: int = 0,
        level_factory: LevelFactory = default_level_factory,
    ) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1, got %d" % levels)
        if isinstance(widths, int):
            width_list = [widths] * levels
        else:
            width_list = list(widths)
            if len(width_list) != levels:
                raise ValueError(
                    "widths sequence length %d != levels %d" % (len(width_list), levels)
                )
        self.levels = levels
        self.depth = depth
        self.k = k
        self.seed = seed
        seeds = derive_seeds(seed, levels + 1)
        self.sketches: List[HeavyHitterSketch] = [
            level_factory(j, depth, width_list[j], k, seeds[j]) for j in range(levels)
        ]
        # One sampler hash for all levels: a key belongs to level j iff the
        # j lowest bits of its hash are all ones, so membership at any
        # depth costs a single hash (the standard nested-substream trick;
        # essential for NitroSketch integration, where membership is
        # checked only on sampled slots).
        self._sampler = TabulationHash(seeds[levels])
        self.total = 0.0
        self.packets_seen = 0
        self._ops = NULL_OPS

    @property
    def ops(self):
        """Operation sink; assigning it propagates to every level."""
        return self._ops

    @ops.setter
    def ops(self, sink) -> None:
        self._ops = sink
        for sketch in self.sketches:
            sketch.ops = sink

    # -- sampling ----------------------------------------------------------

    def sampled_depth(self, key: int) -> int:
        """Deepest level containing ``key``: trailing ones of its hash."""
        h = self._sampler.hash64(key)
        # Count trailing one-bits (capped at levels - 1).
        trailing = ((~h) & (h + 1)).bit_length() - 1
        if trailing < 0:  # h was all ones
            trailing = 64
        return min(trailing, self.levels - 1)

    def sample_bit(self, level: int, key: int) -> int:
        """Level-``level`` membership indicator (level >= 1)."""
        return 1 if self.sampled_depth(key) >= level else 0

    def sampled_depth_batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`sampled_depth` for a key array."""
        hashes = self._sampler.batch(keys)
        with np.errstate(over="ignore", divide="ignore"):
            lowest_zero = (~hashes) & (hashes + np.uint64(1))
            trailing = np.where(
                lowest_zero == 0,
                64.0,
                np.log2(np.maximum(lowest_zero.astype(np.float64), 1.0)),
            ).astype(np.int64)
        return np.minimum(trailing, self.levels - 1)

    # -- data plane ---------------------------------------------------------

    def update(self, key: int, weight: float = 1.0) -> None:
        """Feed one packet into every level containing its key."""
        self.ops.packet()
        self.packets_seen += 1
        self.total += weight
        self.ops.hash()  # the single sampler hash
        deepest = self.sampled_depth(key)
        for level in range(deepest + 1):
            self.sketches[level].update(key, weight)

    def update_many(self, keys) -> None:
        for key in keys:
            self.update(key)

    def update_batch(
        self, keys, weights=None, duration_seconds=None, count_packets=True
    ) -> None:
        """Vectorised ingest: per-level sampler masks + batched updates.

        Produces the same level-sketch counters as scalar ingest.  Each
        level's sampler bits are evaluated in batch; keys failing level
        ``j`` never reach levels ``> j``.  ``count_packets=False`` skips
        the packet/mass bookkeeping for wrappers (NitroUnivMon's exact
        phase) that have already accounted for the batch.
        """
        keys = np.asarray(keys)
        count = len(keys)
        if count == 0:
            return
        if count_packets:
            self.ops.packet(count)
            self.packets_seen += count
            self.total += count if weights is None else float(np.sum(weights))
        self.ops.hash(count)  # one sampler hash per packet
        depths = self.sampled_depth_batch(keys)
        level_weights = None if weights is None else np.asarray(weights, dtype=np.float64)
        for level in range(self.levels):
            mask = depths >= level
            if not np.any(mask):
                break
            level_keys = keys[mask]
            selected_weights = None if level_weights is None else level_weights[mask]
            self._level_update_batch(level, level_keys, selected_weights, duration_seconds)

    def _level_update_batch(self, level, keys, weights, duration_seconds) -> None:
        sketch = self.sketches[level]
        try:
            sketch.update_batch(keys, weights, duration_seconds=duration_seconds)
        except TypeError:
            sketch.update_batch(keys, weights)

    # -- queries ------------------------------------------------------------

    def query(self, key: int) -> float:
        """Point frequency estimate (from the level-0 Count Sketch)."""
        return self.sketches[0].query(key)

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Flows whose level-0 estimate exceeds ``threshold``, largest first."""
        hitters = [
            (key, estimate)
            for key, estimate in self.sketches[0].top_items()
            if estimate > threshold
        ]
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def g_sum(self, g: Callable[[float], float]) -> float:
        """Estimate ``sum_x g(f_x)`` with the recursive algorithm."""
        deepest = self.levels - 1
        y = 0.0
        for key, estimate in self.sketches[deepest].top_items():
            y += g(estimate)
        for level in range(deepest - 1, -1, -1):
            contribution = 0.0
            for key, estimate in self.sketches[level].top_items():
                indicator = self.sample_bit(level + 1, key) if level + 1 < self.levels else 0
                contribution += g(estimate) * (1.0 - 2.0 * indicator)
            y = 2.0 * y + contribution
        return y

    def entropy_estimate(self) -> float:
        """Shannon entropy (bits) of the flow-size distribution."""
        if self.total <= 0:
            return 0.0
        gsum = self.g_sum(g_entropy)
        return max(math.log2(self.total) - gsum / self.total, 0.0)

    def distinct_estimate(self) -> float:
        """Estimated number of distinct flows (F0)."""
        return max(self.g_sum(g_distinct), 0.0)

    def l2_squared_estimate(self) -> float:
        """Estimated second frequency moment F2 (via level-0 AMS)."""
        return self.sketches[0].l2_estimate() ** 2

    def frequency_moment(self, order: float) -> float:
        """Estimated frequency moment ``F_k = sum f_x**k`` via the G-sum.

        ``order = 0`` is the distinct count, ``order = 1`` the packet
        total, ``order = 2`` the repeat rate, etc.  UnivMon supports any
        such stream-polynomial statistic from the same structure -- the
        generality claim of [55] the paper leans on.
        """
        if order < 0:
            raise ValueError("order must be non-negative")
        if order == 0:
            return self.distinct_estimate()

        def g_moment(frequency: float) -> float:
            return max(frequency, 0.0) ** order

        return max(self.g_sum(g_moment), 0.0)

    def change_detection(
        self, previous: "UnivMon", threshold: float
    ) -> List[Tuple[int, float]]:
        """Heavy changers vs a previous-epoch UnivMon (same seed).

        Estimates ``|f_now - f_prev|`` for every key tracked in either
        epoch's level-0 heap and reports those above ``threshold`` (an
        absolute packet-count threshold; callers usually pass a fraction
        of the total change, as in Section 7's Change task).
        """
        if previous.seed != self.seed:
            raise ValueError("change detection requires same-seed UnivMon epochs")
        candidates = {key for key, _ in self.sketches[0].top_items()}
        candidates |= {key for key, _ in previous.sketches[0].top_items()}
        changes = []
        for key in candidates:
            delta = abs(self.query(key) - previous.query(key))
            if delta > threshold:
                changes.append((key, delta))
        changes.sort(key=lambda item: (-item[1], item[0]))
        return changes

    # -- bookkeeping ----------------------------------------------------------

    @property
    def converged(self) -> bool:
        """AlwaysCorrect convergence of the level-0 estimator.

        True for vanilla levels; with NitroSketch levels in AlwaysCorrect
        mode, reflects whether the (dominant) level-0 sketch has started
        sampling.
        """
        return getattr(self.sketches[0], "converged", True)

    @property
    def packets_sampled(self) -> int:
        """Packets that caused at least one counter update somewhere.

        With NitroSketch levels this is (an upper bound on) the union of
        per-level sampled packets -- the quantity the separate-thread
        pre-processing stage copies.  Vanilla levels update on every
        packet, so the fraction is 1.
        """
        total = 0
        for sketch in self.sketches:
            sampled = getattr(sketch, "packets_sampled", None)
            if sampled is None:
                return self.packets_seen
            total += sampled
        return min(total, self.packets_seen)

    def memory_bytes(self) -> int:
        return sum(sketch.memory_bytes() for sketch in self.sketches)

    def reset(self) -> None:
        for sketch in self.sketches:
            sketch.reset()
        self.total = 0.0
        self.packets_seen = 0


def paper_widths(levels: int, depth: int = 5) -> List[int]:
    """Per-level Count-Sketch widths matching the paper's memory plan.

    Section 7: "we allocate 4MB, 2MB, 1MB, 500KB for the first HH
    sketches, and 250KB for the rest" -- with 4-byte counters and
    ``depth`` rows, width = bytes / (4 * depth).
    """
    plan_bytes = [4 * 2**20, 2 * 2**20, 1 * 2**20, 500 * 2**10]
    widths = []
    for level in range(levels):
        level_bytes = plan_bytes[level] if level < len(plan_bytes) else 250 * 2**10
        widths.append(max(1, level_bytes // (4 * depth)))
    return widths
