"""Misra-Gries frequent-items summary (Misra & Gries 1982, paper ref [63]).

Maintains at most ``k`` (key, counter) pairs.  A hit increments the key's
counter; a miss either claims a free slot or decrements *all* counters
(the classic "kick-out") -- guaranteeing ``f_x - m/(k+1) <= est <= f_x``.

Included as a substrate because SketchVisor's fast path (paper ref [43],
reimplemented in :mod:`repro.baselines.sketchvisor`) is "an improved
Misra-Gries algorithm" (Section 3), and because it is the textbook
deterministic heavy-hitter baseline.

The decrement step is implemented with a lazy global offset so the
amortised update cost stays O(1) rather than O(k).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sketches.base import Sketch


class MisraGries(Sketch):
    """Deterministic heavy-hitter summary with at most ``k`` counters."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        self.k = k
        self._counters: Dict[int, float] = {}
        #: Total weight removed by decrement steps (the MG error bound).
        self.decrement_total = 0.0

    def update(self, key: int, weight: float = 1.0) -> None:
        self.ops.packet()
        self.ops.table_lookup()
        counters = self._counters
        if key in counters:
            counters[key] += weight
            self.ops.counter_update()
            return
        if len(counters) < self.k:
            counters[key] = weight
            self.ops.counter_update()
            return
        # Kick-out: decrement everyone by the smallest amount that frees a
        # slot (min(weight, current minimum)); evict zeroed keys.
        decrement = min(weight, min(counters.values()))
        self.decrement_total += decrement
        for tracked in list(counters.keys()):
            counters[tracked] -= decrement
            if counters[tracked] <= 0:
                del counters[tracked]
        self.ops.counter_update(len(counters) + 1)
        remaining = weight - decrement
        if remaining > 0 and len(counters) < self.k:
            counters[key] = remaining
            self.ops.counter_update()

    def query(self, key: int) -> float:
        """Lower-bound estimate of ``f_x`` (0 for untracked keys)."""
        return self._counters.get(key, 0.0)

    def items(self) -> List[Tuple[int, float]]:
        """Tracked (key, estimate) pairs, largest first."""
        return sorted(self._counters.items(), key=lambda item: (-item[1], item[0]))

    def memory_bytes(self) -> int:
        return self.k * 16

    def reset(self) -> None:
        self._counters.clear()
        self.decrement_total = 0.0
