"""Sketch interfaces.

Two layers of interface:

* :class:`Sketch` -- anything that can ingest a key stream and answer
  point queries (includes non-canonical structures such as Misra-Gries
  and the hashtable baseline).
* :class:`CanonicalSketch` -- the "canonical workflow" the paper targets
  (Section 4): ``d`` rows of ``w`` counters, each row owning an
  independent (bucket hash, sign hash) pair, updated as
  ``C[i][h_i(x)] += weight * g_i(x)``.  NitroSketch can wrap *any*
  canonical sketch because it only needs per-row update access and the
  sketch's own row-combining query rule.

Counters are ``float64`` because NitroSketch adds ``p^-1``-scaled
increments; for vanilla operation all values stay integral.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional

import numpy as np

from repro.hashing.families import MultiplyShiftHash, MultiplyShiftSign, derive_seeds
from repro.kernels import SketchKernel
from repro.metrics.opcount import NULL_OPS


class Sketch(abc.ABC):
    """Minimal streaming-summary interface."""

    #: Operation sink; assign an :class:`repro.metrics.OpCounter` to profile.
    ops = NULL_OPS

    @abc.abstractmethod
    def update(self, key: int, weight: float = 1.0) -> None:
        """Ingest one packet of flow ``key`` (``weight`` packets/bytes)."""

    @abc.abstractmethod
    def query(self, key: int) -> float:
        """Estimate the total weight of flow ``key``."""

    def update_many(self, keys: Iterable[int]) -> None:
        """Ingest a sequence of keys one by one (convenience)."""
        for key in keys:
            self.update(key)

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate resident size of the data structure in bytes."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all state, keeping the hash functions."""


class CanonicalSketch(Sketch):
    """A ``d x w`` counter-array sketch with per-row hash pairs.

    Parameters
    ----------
    depth:
        Number of rows ``d`` (independent hash functions).
    width:
        Counters per row ``w``.
    seed:
        Master seed; all row hashes derive from it.
    signed:
        ``True`` gives Count-Sketch-style ±1 updates (L2 guarantee);
        ``False`` gives Count-Min-style +1 updates (L1 guarantee).
        Mirrors the ``g_i`` choice in Algorithm 1 line 3.
    hash_family:
        ``"multiply_shift"`` (default; 2-universal, fastest in Python) or
        ``"xxhash"`` (the C implementation's family, Section 6) -- same
        interface, swappable for fidelity studies.
    """

    def __init__(
        self,
        depth: int,
        width: int,
        seed: int,
        signed: bool,
        hash_family: str = "multiply_shift",
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1, got %d" % depth)
        if width < 1:
            raise ValueError("width must be >= 1, got %d" % width)
        self.depth = depth
        self.width = width
        self.signed = signed
        self.seed = seed
        self.hash_family = hash_family
        seeds = derive_seeds(seed, depth * 2)
        if hash_family == "multiply_shift":
            self.row_hashes = [
                MultiplyShiftHash(width, seeds[2 * i]) for i in range(depth)
            ]
            self.row_signs = [
                MultiplyShiftSign(seeds[2 * i + 1], constant_one=not signed)
                for i in range(depth)
            ]
        elif hash_family == "xxhash":
            from repro.hashing.rowhash import XXHashRowHash, XXHashRowSign

            self.row_hashes = [
                XXHashRowHash(width, seeds[2 * i]) for i in range(depth)
            ]
            self.row_signs = [
                XXHashRowSign(seeds[2 * i + 1], constant_one=not signed)
                for i in range(depth)
            ]
        else:
            raise ValueError(
                "hash_family must be 'multiply_shift' or 'xxhash', got %r"
                % (hash_family,)
            )
        self.counters = np.zeros((depth, width), dtype=np.float64)
        self._kernel: Optional[SketchKernel] = None

    @property
    def kernel(self) -> SketchKernel:
        """The fused batch update/query kernel bound to this sketch.

        Built lazily (the row hashes are immutable after construction)
        and shared by every batch entry point -- including NitroSketch's
        sampled-slot path, which drives it directly.
        """
        if self._kernel is None:
            self._kernel = SketchKernel(self)
        return self._kernel

    # -- canonical row-level access (what NitroSketch drives) ------------

    def row_bucket(self, row: int, key: int) -> int:
        """Bucket index ``h_row(key)``; counts one hash computation."""
        self.ops.hash()
        return self.row_hashes[row](key)

    def row_sign(self, row: int, key: int) -> int:
        """Sign ``g_row(key)`` (±1, or +1 for unsigned sketches).

        Not billed as a hash operation: real implementations derive the
        sign from a spare bit of the row hash, so its cost is already in
        :meth:`row_bucket`.
        """
        if not self.signed:
            return 1
        return self.row_signs[row](key)

    def row_update(self, row: int, key: int, increment: float) -> None:
        """Apply ``C[row][h_row(key)] += increment * g_row(key)``.

        ``increment`` already carries any inverse-sampling-probability
        scaling (NitroSketch passes ``p^-1 * weight``).
        """
        bucket = self.row_bucket(row, key)
        sign = self.row_sign(row, key)
        self.ops.counter_update()
        self.counters[row, bucket] += increment * sign

    def row_estimate(self, row: int, key: int) -> float:
        """The single-row estimate ``C[row][h_row(key)] * g_row(key)``.

        Billed as one hash: point queries recompute the row hashes, and
        data-plane heap offers go through this path (Table 2's
        ``heap_find`` cost includes them).
        """
        self.ops.hash()
        bucket = self.row_hashes[row](key)
        value = self.counters[row, bucket]
        if self.signed:
            return value * self.row_signs[row](key)
        return value

    # -- full-sketch operations ------------------------------------------

    @abc.abstractmethod
    def combine_rows(self, estimates: List[float]) -> float:
        """Collapse per-row estimates into the sketch's answer.

        Count-Min takes the minimum; Count Sketch and K-ary take the
        median.  NitroSketch reuses this so a wrapped sketch answers
        queries exactly the way its vanilla version would.
        """

    def update(self, key: int, weight: float = 1.0) -> None:
        """Vanilla update: touch every row (``d`` hashes, ``d`` counters)."""
        self.ops.packet()
        for row in range(self.depth):
            self.row_update(row, key, weight)

    def update_and_estimate(self, key: int, weight: float = 1.0) -> float:
        """Update every row and return the fresh estimate, hashing once.

        The common C idiom for heavy-hitter tracking: the hash values
        computed for the update are reused for the estimate, so the heap
        offer costs no extra hash -- only the counter reads.
        """
        self.ops.packet()
        estimates = []
        for row in range(self.depth):
            self.ops.hash()
            bucket = self.row_hashes[row](key)
            sign = self.row_signs[row](key) if self.signed else 1
            self.ops.counter_update()
            self.counters[row, bucket] += weight * sign
            estimates.append(self.counters[row, bucket] * sign)
        return self.combine_rows(estimates)

    def query(self, key: int) -> float:
        """Point query combining all row estimates."""
        return self.combine_rows(
            [self.row_estimate(row, key) for row in range(self.depth)]
        )

    def query_batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised point queries: ``float64`` estimates per key.

        One fused row hash over the whole batch, one fancy-index gather
        into a ``(depth, n)`` estimate matrix, then the sketch's own
        vectorised row combiner -- element-for-element identical to
        calling :meth:`query` per key, at a fraction of the cost (the
        scalar loop pays ``depth`` Python-level hashes per key).  Billed
        exactly like ``n`` scalar queries.
        """
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.zeros(0, dtype=np.float64)
        self.ops.hash(self.depth * len(keys))
        return self._combine_rows_batch(self.kernel.estimate_matrix(keys))

    def _combine_rows_batch(self, estimates: "np.ndarray") -> "np.ndarray":
        """Collapse a ``(depth, n)`` estimate matrix column-wise.

        Generic fallback applies :meth:`combine_rows` per column;
        concrete sketches override with a closed-form NumPy reduction
        (min for Count-Min, lower median for Count Sketch / K-ary).
        """
        if self.depth == 1:
            return estimates[0].astype(np.float64, copy=False)
        return np.array(
            [self.combine_rows(list(column)) for column in estimates.T],
            dtype=np.float64,
        )

    def update_batch(
        self,
        keys: "np.ndarray",
        weights: Optional["np.ndarray"] = None,
        count_packets: bool = True,
    ) -> None:
        """Vectorised vanilla update of a key batch (Idea-D analogue).

        Routes through the fused :class:`~repro.kernels.SketchKernel`:
        one broadcast hash over every row, one flat-index scatter-add --
        counter state is exactly equivalent to calling :meth:`update`
        per key (bit-identical for integral increments).

        ``count_packets=False`` skips the per-packet op tally for
        callers (NitroSketch's exact phase, sampling wrappers) that have
        already billed the batch as packets -- declared accounting
        instead of the old ``ops.packet(-n)`` recount hack.
        """
        keys = np.asarray(keys)
        count = len(keys)
        if count == 0:
            return
        if count_packets:
            self.ops.packet(count)
        self.ops.hash(self.depth * count)
        self.kernel.update(keys, weights)
        self.ops.counter_update(self.depth * count)

    def note_batch_mass(self, mass: float) -> None:
        """Hook for subclasses that track total stream mass.

        Vectorised updaters that write counters directly (NitroSketch's
        batch path) call this with the summed increments applied, so
        estimators like K-ary's mean correction stay consistent.  The
        default sketch keeps no such state.
        """

    def merge(self, other: "CanonicalSketch") -> None:
        """Add another sketch built with the same seed/shape (mergeability)."""
        if (
            other.depth != self.depth
            or other.width != self.width
            or other.seed != self.seed
            or other.signed != self.signed
            or other.hash_family != self.hash_family
        ):
            raise ValueError("can only merge sketches with identical configuration")
        self.counters += other.counters

    def row_sum_of_squares(self, row: int) -> float:
        """``sum_y C[row][y]**2`` -- the per-row L2² estimator AlwaysCorrect
        mode monitors (Algorithm 1 line 14)."""
        row_counters = self.counters[row]
        return float(np.dot(row_counters, row_counters))

    def l2_squared_estimate(self) -> float:
        """Median across rows of the sum of squared counters.

        For a signed (Count Sketch) structure this is the AMS estimator of
        the stream's ``L2**2`` (paper Section 4.3, AlwaysCorrect mode).
        """
        sums = sorted(self.row_sum_of_squares(row) for row in range(self.depth))
        return sums[(self.depth - 1) // 2]

    def check_invariants(self) -> List[str]:
        """Structural self-checks; returns violation strings.

        The base contract is shape and finiteness of the counter grid;
        subclasses that keep derived state (K-ary's stream-mass total)
        extend this with their own conservation checks.  Pull-based --
        nothing on the data plane calls it unless a verify hook does.
        """
        violations: List[str] = []
        if self.counters.shape != (self.depth, self.width):
            violations.append(
                "%s: counter grid shape %r != (%d, %d)"
                % (type(self).__name__, self.counters.shape, self.depth, self.width)
            )
        if not np.all(np.isfinite(self.counters)):
            violations.append(
                "%s: %d non-finite counter(s)"
                % (type(self).__name__, int(np.sum(~np.isfinite(self.counters))))
            )
        return violations

    def memory_bytes(self) -> int:
        # 4-byte counters in the C implementation; report that footprint so
        # memory figures are comparable with the paper's configurations.
        return self.depth * self.width * 4

    def reset(self) -> None:
        self.counters.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(depth=%d, width=%d, signed=%s)" % (
            type(self).__name__,
            self.depth,
            self.width,
            self.signed,
        )
