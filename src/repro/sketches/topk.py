"""Top-k heavy-key store (the paper's "TopKeys" structure).

Sketches only hold anonymous counters; to *report* heavy hitters one must
also remember which keys are large (paper Section 3, Bottleneck 3).  The
standard implementation -- and the one profiled in Table 2 (``heap_find``,
``heapify``) -- is a min-heap of the current top-k keys alongside a
membership dictionary.

On every tracked update the caller offers ``(key, estimate)``; the store
admits the key if the estimate beats the current minimum.  Heap operations
are recorded in the ``ops`` sink so the cost model sees cost ``P``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Tuple

from repro.metrics.opcount import NULL_OPS


#: Heap-size bound as a multiple of ``k``: once stale entries push the
#: heap past this, it is rebuilt from the live membership dict.
COMPACT_FACTOR = 4


class TopK:
    """Min-heap keyed store of the ``k`` (approximately) largest flows.

    Entries are lazily invalidated: re-offering a key pushes a fresh heap
    entry and marks the old one stale, which keeps offers O(log k) without
    a decrease-key primitive.  Stale entries cannot accumulate without
    bound: whenever the heap exceeds ``COMPACT_FACTOR * k`` entries it is
    compacted back to the live ``<= k`` set (amortised O(1) per offer).
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        self.k = k
        self.ops = NULL_OPS
        self._heap: List[Tuple[float, int]] = []
        self._best: Dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, key: int) -> bool:
        return key in self._best

    def offer(self, key: int, estimate: float) -> bool:
        """Offer a (key, estimate) pair; returns True if the key is tracked.

        Mirrors the sketch workflow in Figure 7: after updating counters,
        the estimated size of the current key is compared against the
        heap minimum.  The membership probe is billed as a table lookup
        (VTune's ``heap_find``); only actual heap modifications are
        billed as heap operations (``heapify``).
        """
        self.ops.table_lookup()
        current = self._best.get(key)
        if current is not None:
            if estimate <= current:
                return True
            self._best[key] = estimate
            self._push(key, estimate)
            self.ops.heap_op()
            return True

        if len(self._best) < self.k:
            self._best[key] = estimate
            self._push(key, estimate)
            self.ops.heap_op()
            return True

        min_estimate, _ = self._peek_valid()
        if estimate <= min_estimate:
            return False

        # Evict the current minimum and admit the newcomer.
        _, evicted = self._pop_valid()
        del self._best[evicted]
        self._best[key] = estimate
        self._push(key, estimate)
        self.ops.heap_op(2)
        return True

    def _push(self, key: int, estimate: float) -> None:
        """Push a live entry, compacting if stale entries piled up."""
        heapq.heappush(self._heap, (estimate, key))
        if len(self._heap) > COMPACT_FACTOR * self.k:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from the live entries, dropping stale ones."""
        self._heap = [(estimate, key) for key, estimate in self._best.items()]
        heapq.heapify(self._heap)
        self.ops.heap_op()

    def _peek_valid(self) -> Tuple[float, int]:
        """Return the smallest non-stale heap entry without removing it."""
        while self._heap:
            estimate, key = self._heap[0]
            if self._best.get(key) == estimate:
                return estimate, key
            heapq.heappop(self._heap)  # stale entry
        raise IndexError("TopK heap is empty")

    def _pop_valid(self) -> Tuple[float, int]:
        """Pop the smallest non-stale entry."""
        while self._heap:
            estimate, key = heapq.heappop(self._heap)
            if self._best.get(key) == estimate:
                return estimate, key
        raise IndexError("TopK heap is empty")

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate over tracked ``(key, estimate)`` pairs (unordered)."""
        return iter(self._best.items())

    def keys(self) -> List[int]:
        """The tracked keys (unordered)."""
        return list(self._best.keys())

    def estimate(self, key: int) -> float:
        """The stored estimate for ``key`` (KeyError if untracked)."""
        return self._best[key]

    def ranked(self) -> List[Tuple[int, float]]:
        """Tracked pairs sorted by estimate, largest first."""
        return sorted(self._best.items(), key=lambda item: (-item[1], item[0]))

    def min_estimate(self) -> float:
        """The smallest tracked estimate (0.0 when empty)."""
        if not self._best:
            return 0.0
        return self._peek_valid()[0]

    def check_invariants(self) -> List[str]:
        """Heap/dict consistency checks; returns violation strings.

        * at most ``k`` tracked keys;
        * the heap never outgrows ``COMPACT_FACTOR * k`` entries (the
          compaction bound -- lazy invalidation alone grows without it);
        * every tracked key's current estimate has a live heap entry, so
          :meth:`min_estimate` / eviction can always find it.
        """
        violations: List[str] = []
        if len(self._best) > self.k:
            violations.append(
                "topk: tracking %d keys, capacity k=%d" % (len(self._best), self.k)
            )
        if len(self._heap) > COMPACT_FACTOR * self.k:
            violations.append(
                "topk: heap holds %d entries, compaction bound %d"
                % (len(self._heap), COMPACT_FACTOR * self.k)
            )
        live = {
            key for estimate, key in self._heap if self._best.get(key) == estimate
        }
        missing = len(self._best) - len(live)
        if missing:
            violations.append(
                "topk: %d tracked key(s) have no live heap entry" % missing
            )
        return violations

    def memory_bytes(self) -> int:
        """Rough footprint: heap entries + dict entries at 16 B each."""
        return (len(self._heap) + len(self._best)) * 16

    def reset(self) -> None:
        self._heap.clear()
        self._best.clear()
