"""Strawman 1: the One-Array Count Sketch (paper Section 4.1).

"Reduce the number of hash functions and arrays": collapse the ``d x w``
grid into a single hash-indexed array, so each packet costs exactly one
bucket hash, one sign hash, and one counter update (1H, 1C).  To retain a
``1 - delta`` success probability *without* row medians the array must
grow from ``O(eps**-2 log(1/delta))`` to ``O(eps**-2 / delta)`` counters
-- roughly 50x more memory at ``delta = 0.01`` -- which evicts the sketch
from the last-level cache and, in the paper's measurements, erases the
speedup.  NitroSketch's Theorem-2 discussion compares against this
directly, so we keep it as an ablation baseline.
"""

from __future__ import annotations

import math
from typing import List

from repro.sketches.base import CanonicalSketch


class OneArrayCountSketch(CanonicalSketch):
    """Count Sketch squeezed into a single row."""

    def __init__(self, width: int, seed: int = 0) -> None:
        super().__init__(1, width, seed, signed=True)

    def combine_rows(self, estimates: List[float]) -> float:
        return estimates[0]

    @classmethod
    def from_error_bounds(cls, epsilon: float, delta: float, seed: int = 0) -> "OneArrayCountSketch":
        """Size for an ``eps*L2`` error with prob ``1-delta`` in one row.

        Without the median trick the failure probability of a single
        Chebyshev row must itself be ``delta``, forcing
        ``w = ceil(3 / (eps**2 * delta))`` counters (paper Section 4.1:
        ``O(eps**-2 delta**-1)``).
        """
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1), got %r" % (epsilon,))
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1), got %r" % (delta,))
        width = int(math.ceil(3.0 / (epsilon * epsilon * delta)))
        return cls(width, seed)
