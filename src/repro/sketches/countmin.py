"""Count-Min Sketch (Cormode & Muthukrishnan 2005, paper ref [27]).

The canonical L1-guarantee sketch: ``d`` rows of ``w`` counters, unsigned
``+weight`` updates, point query = minimum over rows.  With
``w = ceil(e / eps)`` and ``d = ceil(ln(1/delta))`` the estimate satisfies
``f_x <= est <= f_x + eps*L1`` with probability ``1 - delta``.

The paper's evaluation configures CMS as 5 rows x 1000 counters
(Figure 2) or 5 x 10000 / 200 KB (Section 7 parameters).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.sketches.base import CanonicalSketch


class CountMinSketch(CanonicalSketch):
    """Count-Min Sketch: unsigned updates, min-of-rows query."""

    def __init__(
        self, depth: int, width: int, seed: int = 0, hash_family: str = "multiply_shift"
    ) -> None:
        super().__init__(depth, width, seed, signed=False, hash_family=hash_family)

    def combine_rows(self, estimates: List[float]) -> float:
        return min(estimates)

    def _combine_rows_batch(self, estimates: "np.ndarray") -> "np.ndarray":
        return estimates.min(axis=0)

    @classmethod
    def from_error_bounds(cls, epsilon: float, delta: float, seed: int = 0) -> "CountMinSketch":
        """Size the sketch for an ``epsilon * L1`` error with prob. ``1-delta``."""
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1), got %r" % (epsilon,))
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1), got %r" % (delta,))
        width = int(math.ceil(math.e / epsilon))
        depth = max(1, int(math.ceil(math.log(1.0 / delta))))
        return cls(depth, width, seed)


class ConservativeCountMinSketch(CountMinSketch):
    """Count-Min with conservative update (Estan & Varghese).

    Only raises the counters that currently equal the row minimum, which
    strictly reduces overestimation while preserving the ``est >= f_x``
    invariant.  Included as an optional-extension baseline: it shows the
    overestimation-bias effect the paper observes in Section 7.3 ("CMS
    achieves better-than-original results when NitroSketch is enabled...
    sampling corrects such an overestimation") from a different angle.

    Note: conservative update needs the current minimum across *all* rows
    before incrementing, so it is inherently a whole-packet (not per-row)
    operation and cannot be wrapped by NitroSketch's row sampling.
    """

    def update(self, key: int, weight: float = 1.0) -> None:
        self.ops.packet()
        buckets = [self.row_bucket(row, key) for row in range(self.depth)]
        values = [self.counters[row, bucket] for row, bucket in enumerate(buckets)]
        target = min(values) + weight
        for row, bucket in enumerate(buckets):
            if self.counters[row, bucket] < target:
                self.counters[row, bucket] = target
                self.ops.counter_update()
