"""NitroSketch reproduction (SIGCOMM 2019).

A full-system reproduction of *NitroSketch: Robust and General
Sketch-based Monitoring in Software Switches* (Liu, Ben-Basat, Einziger,
Kassner, Braverman, Friedman, Sekar).

Quick start::

    from repro import NitroSketch, CountSketch
    from repro.traffic import caida_like

    trace = caida_like(1_000_000, n_flows=100_000)
    nitro = NitroSketch(CountSketch(5, 65536), probability=0.01, top_k=100)
    nitro.update_batch(trace.keys)
    hitters = nitro.heavy_hitters(threshold=0.0005 * len(trace))

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` -- NitroSketch itself (Algorithm 1).
* :mod:`repro.sketches` -- the vanilla sketches it accelerates.
* :mod:`repro.hashing` -- hash families, xxhash32, PRNGs.
* :mod:`repro.baselines` -- SketchVisor, ElasticSketch, NetFlow, ...
* :mod:`repro.switchsim` -- OVS/VPP/BESS simulator + cycle cost model.
* :mod:`repro.traffic` -- trace synthesis and replay.
* :mod:`repro.control` -- epochs and measurement tasks.
* :mod:`repro.metrics` -- accuracy metrics and operation counting.
* :mod:`repro.analysis` -- the paper's theorems as code.
* :mod:`repro.experiments` -- one runner per paper figure/table.
"""

from repro.core import (
    NitroSketch,
    NitroConfig,
    NitroMode,
    GeometricSampler,
    nitro_countmin,
    nitro_countsketch,
    nitro_kary,
    nitro_univmon,
)
from repro.sketches import (
    CountMinSketch,
    CountSketch,
    KArySketch,
    UnivMon,
    TopK,
)

__version__ = "1.0.0"

__all__ = [
    "NitroSketch",
    "NitroConfig",
    "NitroMode",
    "GeometricSampler",
    "nitro_countmin",
    "nitro_countsketch",
    "nitro_kary",
    "nitro_univmon",
    "CountMinSketch",
    "CountSketch",
    "KArySketch",
    "UnivMon",
    "TopK",
    "__version__",
]
