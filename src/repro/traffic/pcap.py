"""Classic libpcap file support (no external dependencies).

The paper evaluates on real captures (CAIDA, MACCDC); this module lets
the library consume actual pcap files: it parses the classic libpcap
container (magic 0xA1B2C3D4, microsecond or nanosecond timestamps,
either endianness), walks Ethernet/IPv4/TCP-UDP headers, and yields the
same :class:`~repro.traffic.traces.Trace` arrays the synthetic
generators produce -- flow keys are the xxhash-folded 5-tuples, exactly
like the C implementation's key extraction (Section 6).

A matching writer emits valid pcap files from traces (synthesising
minimal Ethernet/IPv4/UDP framing), which the tests use to round-trip
and which makes the synthetic workloads consumable by standard tools.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.switchsim.packet import FiveTuple
from repro.traffic.traces import Trace

MAGIC_MICROS = 0xA1B2C3D4
MAGIC_NANOS = 0xA1B23C4D

#: Ethernet header length and the IPv4 EtherType.
_ETH_LEN = 14
_ETHERTYPE_IPV4 = 0x0800
_PROTO_TCP = 6
_PROTO_UDP = 17


class PcapFormatError(ValueError):
    """The file is not a classic pcap capture this reader understands."""


def _detect_endianness(magic_bytes: bytes) -> Tuple[str, float]:
    """Return (struct endianness prefix, timestamp fraction divisor)."""
    for prefix in ("<", ">"):
        (magic,) = struct.unpack(prefix + "I", magic_bytes)
        if magic == MAGIC_MICROS:
            return prefix, 1e6
        if magic == MAGIC_NANOS:
            return prefix, 1e9
    raise PcapFormatError("not a classic pcap file (bad magic %r)" % (magic_bytes,))


def iter_pcap_packets(path: str) -> Iterator[Tuple[float, int, bytes]]:
    """Yield ``(timestamp_seconds, captured_length, packet_bytes)``."""
    with open(path, "rb") as handle:
        header = handle.read(24)
        if len(header) < 24:
            raise PcapFormatError("truncated pcap global header")
        prefix, divisor = _detect_endianness(header[:4])
        while True:
            record = handle.read(16)
            if len(record) < 16:
                return
            seconds, fraction, captured, original = struct.unpack(
                prefix + "IIII", record
            )
            data = handle.read(captured)
            if len(data) < captured:
                raise PcapFormatError("truncated pcap packet record")
            yield seconds + fraction / divisor, original, data


def parse_five_tuple(packet: bytes) -> Optional[FiveTuple]:
    """Extract the IPv4 5-tuple from an Ethernet frame, or None.

    Non-IPv4 frames, fragments past the first, and truncated headers
    return None (the packet still counts toward the trace with a
    fallback key, mirroring how switch datapaths treat unparseable
    traffic).
    """
    if len(packet) < _ETH_LEN + 20:
        return None
    (ethertype,) = struct.unpack_from("!H", packet, 12)
    if ethertype != _ETHERTYPE_IPV4:
        return None
    ip_offset = _ETH_LEN
    version_ihl = packet[ip_offset]
    if version_ihl >> 4 != 4:
        return None
    ihl = (version_ihl & 0x0F) * 4
    if ihl < 20 or len(packet) < ip_offset + ihl:
        return None
    protocol = packet[ip_offset + 9]
    src_ip, dst_ip = struct.unpack_from("!II", packet, ip_offset + 12)
    src_port = dst_port = 0
    if protocol in (_PROTO_TCP, _PROTO_UDP):
        l4_offset = ip_offset + ihl
        if len(packet) >= l4_offset + 4:
            src_port, dst_port = struct.unpack_from("!HH", packet, l4_offset)
    return FiveTuple(src_ip, dst_ip, src_port, dst_port, protocol)


def read_pcap(path: str, name: Optional[str] = None, key_seed: int = 0) -> Trace:
    """Load a pcap capture as a :class:`Trace`.

    Flow keys are ``FiveTuple.flow_key`` (xxhash32-folded) for parseable
    IPv4 packets; unparseable frames hash their raw leading bytes so
    they still participate in totals.
    """
    keys = []
    sizes = []
    timestamps = []
    sources = []
    from repro.hashing.xxhash import xxhash32

    for timestamp, original_length, data in iter_pcap_packets(path):
        tup = parse_five_tuple(data)
        if tup is not None:
            # Mask to 63 bits so keys fit the Trace's int64 arrays.
            keys.append(tup.flow_key(key_seed) & 0x7FFFFFFFFFFFFFFF)
            sources.append(tup.src_ip)
        else:
            keys.append(xxhash32(data[:32], key_seed))
            sources.append(0)
        sizes.append(original_length)
        timestamps.append(timestamp)
    return Trace(
        name=name or path,
        keys=np.array(keys, dtype=np.int64) if keys else np.empty(0, dtype=np.int64),
        sizes=np.array(sizes, dtype=np.int32) if sizes else np.empty(0, dtype=np.int32),
        timestamps=(
            np.array(timestamps, dtype=np.float64)
            if timestamps
            else np.empty(0, dtype=np.float64)
        ),
        src_addresses=(
            np.array(sources, dtype=np.int64) if sources else None
        ),
    )


def write_pcap(trace: Trace, path: str) -> None:
    """Write a trace as a classic pcap file (Ethernet/IPv4/UDP frames).

    Keys are embedded as (src ip, dst ip, ports) derived from the flow
    key, so ``read_pcap(write_pcap(t))`` groups packets into the same
    flows (keys re-fold through the 5-tuple hash, so the *values* differ
    but the partition is preserved).
    """
    with open(path, "wb") as handle:
        handle.write(
            struct.pack("<IHHiIII", MAGIC_MICROS, 2, 4, 0, 0, 65535, 1)
        )
        for index in range(len(trace)):
            key = int(trace.keys[index]) & 0xFFFFFFFFFFFFFFFF
            size = int(trace.sizes[index])
            timestamp = float(trace.timestamps[index])
            src_ip = (key >> 32) & 0xFFFFFFFF
            dst_ip = key & 0xFFFFFFFF
            src_port = (key >> 16) & 0xFFFF
            dst_port = key & 0xFFFF
            payload_len = max(size - _ETH_LEN - 20 - 8, 0)
            ip_total = 20 + 8 + payload_len
            frame = b"".join(
                (
                    b"\x02\x00\x00\x00\x00\x01",  # dst MAC
                    b"\x02\x00\x00\x00\x00\x02",  # src MAC
                    struct.pack("!H", _ETHERTYPE_IPV4),
                    struct.pack(
                        "!BBHHHBBHII",
                        0x45,  # version 4, IHL 5
                        0,
                        ip_total,
                        index & 0xFFFF,
                        0,
                        64,
                        _PROTO_UDP,
                        0,  # checksum left zero (offload convention)
                        src_ip,
                        dst_ip,
                    ),
                    struct.pack("!HHHH", src_port, dst_port, 8 + payload_len, 0),
                    bytes(min(payload_len, 64)),  # truncated payload capture
                )
            )
            captured = len(frame)
            seconds = int(timestamp)
            micros = int((timestamp - seconds) * 1e6)
            handle.write(struct.pack("<IIII", seconds, micros, captured, size))
            handle.write(frame)
