"""Workload generation -- the traces of the paper's Section 7.

The paper evaluates on CAIDA backbone traces, UNI1/UNI2 datacenter
traces, MACCDC attack traces, and MoonGen-generated min-sized stress
traffic.  None of those datasets ship with this repository (the CAIDA
and MACCDC archives are gated), so :mod:`repro.traffic.traces`
synthesises statistical equivalents: heavy-tailed Zipf-like flow-size
distributions with each trace family's published mean packet size and
skew character (see DESIGN.md, Substitutions).

* :mod:`repro.traffic.flows` -- flow-size distribution machinery.
* :mod:`repro.traffic.traces` -- the :class:`Trace` container and the
  named generators (``caida_like``, ``datacenter_like``, ``ddos_like``,
  ``min_sized_stress``, ``malware_like``).
* :mod:`repro.traffic.replay` -- MoonGen-style replay at a target rate.
* :mod:`repro.traffic.pcaplite` -- compact on-disk trace format.
"""

from repro.traffic.flows import (
    zipf_keys,
    uniform_keys,
    flow_size_distribution,
    true_counts,
    remap_flows,
    scramble_keys,
)
from repro.traffic.traces import (
    Trace,
    caida_like,
    datacenter_like,
    ddos_like,
    malware_like,
    min_sized_stress,
    TRACE_FAMILIES,
)
from repro.traffic.replay import Replayer, Batch
from repro.traffic.pcaplite import save_trace, load_trace
from repro.traffic.pcap import read_pcap, write_pcap, parse_five_tuple, PcapFormatError

__all__ = [
    "zipf_keys",
    "uniform_keys",
    "flow_size_distribution",
    "true_counts",
    "remap_flows",
    "scramble_keys",
    "Trace",
    "caida_like",
    "datacenter_like",
    "ddos_like",
    "malware_like",
    "min_sized_stress",
    "TRACE_FAMILIES",
    "Replayer",
    "Batch",
    "save_trace",
    "load_trace",
    "read_pcap",
    "write_pcap",
    "parse_five_tuple",
    "PcapFormatError",
]
