"""Synthetic trace families matching the paper's workloads (Section 7).

"We use four types of workloads: (a) CAIDA ... (b) Min-sized: simulated
traffic with min-sized packets for stress testing; (c) Data center:
UNI1/UNI2; (d) Cyber attack: DDoS attack traces.  The average packet
sizes in the CAIDA, Cyber attack, and data center traces are 714, 272,
and 747 bytes respectively."

Each generator returns a :class:`Trace` with flow keys, packet sizes and
timestamps.  The skew parameters are chosen to match the qualitative
characterisation in the paper (CAIDA/DDoS heavy-tailed, datacenter
"quite skewed", Section 7.4) and are exposed for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.traffic.flows import scramble_keys, uniform_keys, zipf_keys


@dataclass
class Trace:
    """A packet trace: parallel arrays of key / size / timestamp.

    Attributes
    ----------
    name:
        Trace family label (appears in experiment reports).
    keys:
        int64 flow identifiers, one per packet.
    sizes:
        int32 packet sizes in bytes.
    timestamps:
        float64 arrival times in seconds (synthesised from the offered
        rate at generation; replayers may rewrite them).
    src_addresses:
        Optional int64 32-bit source addresses (present when the task
        needs address structure: DDoS source counting, R-HHH prefixes).
    """

    name: str
    keys: "np.ndarray"
    sizes: "np.ndarray"
    timestamps: "np.ndarray"
    src_addresses: Optional["np.ndarray"] = None

    def __post_init__(self) -> None:
        if not (len(self.keys) == len(self.sizes) == len(self.timestamps)):
            raise ValueError("keys, sizes and timestamps must have equal length")
        if self.src_addresses is not None and len(self.src_addresses) != len(self.keys):
            raise ValueError("src_addresses length must match keys")

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def mean_packet_size(self) -> float:
        """Mean packet size in bytes."""
        if len(self.sizes) == 0:
            return 0.0
        return float(np.mean(self.sizes))

    @property
    def duration_seconds(self) -> float:
        if len(self.timestamps) < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def flow_count(self) -> int:
        """Exact number of distinct flows."""
        return int(np.unique(self.keys).size)

    def counts(self) -> Dict[int, int]:
        """Exact per-flow packet counts (ground truth)."""
        unique, counts = np.unique(self.keys, return_counts=True)
        return {int(key): int(count) for key, count in zip(unique, counts)}

    def slice(self, start: int, stop: int) -> "Trace":
        """A view-like sub-trace (epoching)."""
        return Trace(
            name=self.name,
            keys=self.keys[start:stop],
            sizes=self.sizes[start:stop],
            timestamps=self.timestamps[start:stop],
            src_addresses=(
                self.src_addresses[start:stop]
                if self.src_addresses is not None
                else None
            ),
        )


def _synthesise_sizes(
    n_packets: int, mean_size: float, rng: "np.random.Generator"
) -> "np.ndarray":
    """Bimodal packet sizes around a target mean (64 B ACK-ish + MTU-ish).

    Real traces mix small control packets with near-MTU data packets;
    a two-point mixture calibrated to the mean reproduces that without
    pretending to more fidelity than we have.
    """
    small, large = 64.0, 1500.0
    mean_size = min(max(mean_size, small), large)
    large_fraction = (mean_size - small) / (large - small)
    draws = rng.random(n_packets)
    sizes = np.where(draws < large_fraction, large, small)
    return sizes.astype(np.int32)


def _synthesise_timestamps(
    sizes: "np.ndarray", offered_gbps: float
) -> "np.ndarray":
    """Arrival times for a constant offered wire rate (MoonGen-style)."""
    if offered_gbps <= 0:
        raise ValueError("offered_gbps must be positive")
    wire_bits = (sizes.astype(np.float64) + 20.0) * 8.0
    inter_arrival = wire_bits / (offered_gbps * 1e9)
    return np.cumsum(inter_arrival)


def _build(
    name: str,
    keys: "np.ndarray",
    mean_size: float,
    offered_gbps: float,
    rng: "np.random.Generator",
    src_addresses: Optional["np.ndarray"] = None,
) -> Trace:
    sizes = _synthesise_sizes(len(keys), mean_size, rng)
    timestamps = _synthesise_timestamps(sizes, offered_gbps)
    return Trace(
        name=name,
        keys=keys,
        sizes=sizes,
        timestamps=timestamps,
        src_addresses=src_addresses,
    )


def caida_like(
    n_packets: int,
    n_flows: int = 100_000,
    skew: float = 1.0,
    offered_gbps: float = 40.0,
    seed: int = 0,
) -> Trace:
    """CAIDA-like backbone trace: heavy-tailed, 714 B mean packets.

    ``skew = 1.0`` gives a heavy tail where mice flows still carry
    non-trivial volume -- the regime where SketchVisor and the hashtable
    baseline lose accuracy/throughput (Sections 2 and 7.4).
    """
    rng = np.random.default_rng(seed)
    keys = zipf_keys(n_packets, n_flows, skew, rng)
    return _build("caida", scramble_keys(keys), 714.0, offered_gbps, rng)


def datacenter_like(
    n_packets: int,
    n_flows: int = 20_000,
    skew: float = 1.6,
    offered_gbps: float = 40.0,
    seed: int = 0,
) -> Trace:
    """UNI1/UNI2-like datacenter trace: "quite skewed", 747 B mean.

    The high skew is what makes NetFlow's HH recall "relatively good"
    on UNI2 (Figure 15c) -- top flows dominate so even sparse sampling
    sees them.
    """
    rng = np.random.default_rng(seed)
    keys = zipf_keys(n_packets, n_flows, skew, rng)
    return _build("datacenter", scramble_keys(keys), 747.0, offered_gbps, rng)


def ddos_like(
    n_packets: int,
    n_background_flows: int = 50_000,
    n_attack_sources: int = 20_000,
    attack_fraction: float = 0.4,
    skew: float = 1.0,
    offered_gbps: float = 40.0,
    seed: int = 0,
) -> Trace:
    """MACCDC-like attack trace: heavy-tailed background + DDoS swarm.

    ``attack_fraction`` of packets come from a large population of
    attack sources all hitting one victim -- each source sends only a
    few packets, producing the very heavy tail on which SketchVisor's
    fast path and NetFlow's recall degrade (Figures 14b / 15b).  Mean
    packet size 272 B per the paper.

    ``src_addresses`` carries the per-packet source so source-fan-in
    (attack detection) tasks can run on the same trace.
    """
    if not 0.0 <= attack_fraction <= 1.0:
        raise ValueError("attack_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    is_attack = rng.random(n_packets) < attack_fraction
    n_attack = int(np.count_nonzero(is_attack))
    background = zipf_keys(n_packets - n_attack, n_background_flows, skew, rng)
    # Attack flows: near-uniform over a large source population, offset
    # past the background key space.
    attack = uniform_keys(n_attack, n_attack_sources, rng) + n_background_flows
    keys = np.empty(n_packets, dtype=np.int64)
    keys[is_attack] = attack
    keys[~is_attack] = background
    scrambled = scramble_keys(keys)
    # Source addresses: background flows map 1:1 to sources; attack flows
    # are distinct sources attacking one victim (key structure reused).
    src = scramble_keys(keys, seed=0xADD4)
    return _build("ddos", scrambled, 272.0, offered_gbps, rng, src_addresses=src)


def malware_like(
    n_packets: int,
    n_flows: int,
    offered_gbps: float = 40.0,
    seed: int = 0,
) -> Trace:
    """Figure-3b style malware trace: a huge, nearly flat flow population.

    The number of flows is the controlled variable (1M-35M in the
    paper); a mild skew keeps it realistic while guaranteeing most flows
    appear, which is what overflows ElasticSketch's linear counting.
    """
    rng = np.random.default_rng(seed)
    keys = zipf_keys(n_packets, n_flows, skew=0.4, rng=rng)
    return _build("malware", scramble_keys(keys), 272.0, offered_gbps, rng)


def min_sized_stress(
    n_packets: int,
    n_flows: int = 100_000,
    skew: float = 1.0,
    offered_gbps: float = 40.0,
    seed: int = 0,
) -> Trace:
    """MoonGen-style 64 B worst-case stress traffic (Sections 3 and 7).

    At 40 GbE this is 59.52 Mpps offered -- the workload that exposes
    every per-packet cost.
    """
    rng = np.random.default_rng(seed)
    keys = zipf_keys(n_packets, n_flows, skew, rng)
    sizes = np.full(n_packets, 64, dtype=np.int32)
    timestamps = _synthesise_timestamps(sizes, offered_gbps)
    return Trace("min64", scramble_keys(keys), sizes, timestamps)


#: Name -> generator map for experiment drivers.
TRACE_FAMILIES = {
    "caida": caida_like,
    "datacenter": datacenter_like,
    "ddos": ddos_like,
    "malware": malware_like,
    "min64": min_sized_stress,
}
