"""Compact on-disk trace format.

Real pcap carries full packet bytes; the experiments only need
(key, size, timestamp[, src]) columns, so traces persist as compressed
NumPy archives.  Round-trips exactly (same dtypes, same values), which
the property tests verify.
"""

from __future__ import annotations

import os

import numpy as np

from repro.traffic.traces import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace to ``path`` (an ``.npz`` archive)."""
    arrays = {
        "version": np.array([_FORMAT_VERSION]),
        "name": np.array([trace.name]),
        "keys": trace.keys,
        "sizes": trace.sizes,
        "timestamps": trace.timestamps,
    }
    if trace.src_addresses is not None:
        arrays["src_addresses"] = trace.src_addresses
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_trace(path: str) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                "unsupported trace format version %d (expected %d)"
                % (version, _FORMAT_VERSION)
            )
        return Trace(
            name=str(archive["name"][0]),
            keys=archive["keys"],
            sizes=archive["sizes"],
            timestamps=archive["timestamps"],
            src_addresses=(
                archive["src_addresses"] if "src_addresses" in archive else None
            ),
        )
