"""Flow-size distribution machinery.

Internet backbone traffic is heavy-tailed: flow sizes roughly follow a
Zipf law, with the skew parameter controlling how much traffic the top
flows carry.  Datacenter traces (UNI1/UNI2 in the paper) are *more*
skewed; attack traces add a large population of small flows.  These
helpers produce key streams with controlled flow counts and skews so
every accuracy experiment can state its workload precisely.

Keys are dense flow identifiers: the Zipf *rank* is the flow id, so flow
0 is the largest, flow 1 the second largest, and so on.  Experiments
that need IP-structured keys map ranks through a permutation hash.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def zipf_keys(
    n_packets: int,
    n_flows: int,
    skew: float = 1.1,
    rng: Optional["np.random.Generator"] = None,
    seed: int = 0,
) -> "np.ndarray":
    """Draw ``n_packets`` flow ids Zipf-distributed over ``[0, n_flows)``.

    Flow id ``i`` receives probability proportional to ``(i+1)**-skew``.
    Sampling uses the exact normalised distribution (inverse-CDF via
    ``searchsorted``), so small universes are handled exactly rather
    than by rejection.
    """
    if n_packets < 0:
        raise ValueError("n_packets must be non-negative")
    if n_flows < 1:
        raise ValueError("n_flows must be >= 1")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    if rng is None:
        rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_flows + 1, dtype=np.float64)
    weights = ranks**-skew
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    uniforms = rng.random(n_packets)
    return np.searchsorted(cdf, uniforms).astype(np.int64)


def uniform_keys(
    n_packets: int,
    n_flows: int,
    rng: Optional["np.random.Generator"] = None,
    seed: int = 0,
) -> "np.ndarray":
    """Uniformly random flow ids -- the fully non-skewed worst case."""
    if rng is None:
        rng = np.random.default_rng(seed)
    return rng.integers(0, n_flows, size=n_packets, dtype=np.int64)


def flow_size_distribution(n_flows: int, skew: float, total_packets: int) -> "np.ndarray":
    """Expected per-flow packet counts for a Zipf(skew) split of a stream."""
    ranks = np.arange(1, n_flows + 1, dtype=np.float64)
    weights = ranks**-skew
    weights /= weights.sum()
    return weights * total_packets


def true_counts(keys: "np.ndarray") -> Dict[int, int]:
    """Exact per-flow counts of a key array (vectorised ground truth)."""
    keys = np.asarray(keys)
    unique, counts = np.unique(keys, return_counts=True)
    return {int(key): int(count) for key, count in zip(unique, counts)}


def remap_flows(keys: "np.ndarray", fraction: float, seed: int = 0xC4A6E) -> "np.ndarray":
    """Re-identify a random ``fraction`` of flows (traffic churn).

    Each flow key is remapped to a fresh identity with probability
    ``fraction`` (decided by a hash of the key, so all packets of a flow
    move together).  Used to synthesise *heavy changers* between epochs:
    a remapped flow's old identity drops to zero and a new identity of
    the same size appears -- exactly the change-detection ground truth.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    keys = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        # SplitMix64-style finalizer: full avalanche so the selector is
        # uniform even for small or correlated keys.
        mixed = (keys + np.uint64(seed)) * np.uint64(0x9E3779B97F4A7C15)
        mixed = (mixed ^ (mixed >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        mixed = (mixed ^ (mixed >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        mixed = mixed ^ (mixed >> np.uint64(31))
    selector = (mixed >> np.uint64(40)).astype(np.float64) / float(1 << 24)
    shifted = np.where(
        selector < fraction,
        (keys ^ np.uint64(0xC4A6_0000_0000)).astype(np.int64),
        keys.astype(np.int64),
    )
    return shifted


def scramble_keys(keys: "np.ndarray", seed: int = 0x5CA4B1E) -> "np.ndarray":
    """Bijectively scramble dense flow ids into 32-bit address-like keys.

    A fixed odd-multiplier affine permutation over 2**32 -- flow ranks
    become realistic-looking, well-spread 32-bit values while remaining
    collision-free, which matters for prefix-based tasks (R-HHH).
    """
    keys = np.asarray(keys).astype(np.uint64)
    multiplier = np.uint64((seed << 1) | 1)
    with np.errstate(over="ignore"):
        mixed = (keys * multiplier + np.uint64(0x9E3779B9)) & np.uint64(0xFFFFFFFF)
    return mixed.astype(np.int64)
