"""Trace replay in batches -- the MoonGen role (paper ref [31]).

The testbed replays traces into the switch at a configurable offered
rate; the switch's PMD polls packets in batches (32 by default for
DPDK).  :class:`Replayer` reproduces that interface: it walks a
:class:`~repro.traffic.traces.Trace` and yields :class:`Batch` objects
carrying the key/size/timestamp arrays of each poll.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.traffic.traces import Trace


@dataclass
class Batch:
    """One PMD poll's worth of packets."""

    keys: "np.ndarray"
    sizes: "np.ndarray"
    timestamps: "np.ndarray"
    src_addresses: Optional["np.ndarray"] = None

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def duration_seconds(self) -> float:
        """Wall-clock span of the batch (0 for single-packet batches)."""
        if len(self.timestamps) < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    @property
    def wire_bits(self) -> float:
        """Bits on the wire including Ethernet framing (20 B/packet)."""
        return float(np.sum(self.sizes.astype(np.float64) + 20.0) * 8.0)


class Replayer:
    """Batched trace iterator with optional rate rescaling.

    Parameters
    ----------
    trace:
        The trace to replay.
    batch_size:
        Packets per poll (DPDK default burst of 32; larger batches
        amortise per-batch costs, as the paper's buffered design does).
    offered_gbps:
        When given, timestamps are rescaled so the offered wire rate
        matches (a MoonGen rate knob).
    """

    def __init__(
        self,
        trace: Trace,
        batch_size: int = 32,
        offered_gbps: Optional[float] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.trace = trace
        self.batch_size = batch_size
        if offered_gbps is None:
            self.timestamps = trace.timestamps
        else:
            if offered_gbps <= 0:
                raise ValueError("offered_gbps must be positive")
            wire_bits = (trace.sizes.astype(np.float64) + 20.0) * 8.0
            self.timestamps = np.cumsum(wire_bits / (offered_gbps * 1e9))

    @property
    def offered_rate_mpps(self) -> float:
        """Offered packet rate implied by the (possibly rescaled) timestamps."""
        duration = float(self.timestamps[-1] - self.timestamps[0]) if len(self.timestamps) > 1 else 0.0
        if duration <= 0:
            return 0.0
        return len(self.trace) / duration / 1e6

    def batches(self) -> Iterator[Batch]:
        """Yield the trace as consecutive batches."""
        trace = self.trace
        for start in range(0, len(trace), self.batch_size):
            stop = min(start + self.batch_size, len(trace))
            yield Batch(
                keys=trace.keys[start:stop],
                sizes=trace.sizes[start:stop],
                timestamps=self.timestamps[start:stop],
                src_addresses=(
                    trace.src_addresses[start:stop]
                    if trace.src_addresses is not None
                    else None
                ),
            )

    def __iter__(self) -> Iterator[Batch]:
        return self.batches()
