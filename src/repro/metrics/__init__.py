"""Evaluation metrics and instrumentation for the NitroSketch reproduction.

* :mod:`repro.metrics.opcount` -- per-category operation counters (hash,
  counter update, heap, PRNG, memcpy) that every sketch and baseline can
  record into; the switch simulator's cost model converts these counts to
  CPU cycles and throughput.
* :mod:`repro.metrics.accuracy` -- relative error, mean relative error,
  recall/precision for heavy hitters, and ground-truth helpers.
* :mod:`repro.metrics.throughput` -- unit conversions between Gbps, Mpps
  and cycles/packet for the line rates the paper quotes.
"""

from repro.metrics.opcount import OpCounter, NULL_OPS, NullOps
from repro.metrics.accuracy import (
    relative_error,
    mean_relative_error,
    recall,
    precision,
    f1_score,
    heavy_hitter_truth,
    top_k_truth,
    change_truth,
    exact_counts,
    empirical_entropy,
    l2_norm,
)
from repro.metrics.throughput import (
    gbps_to_mpps,
    mpps_to_gbps,
    cycles_per_packet_to_mpps,
    mpps_to_cycles_per_packet,
    LINE_RATE_10G_64B_MPPS,
    LINE_RATE_40G_64B_MPPS,
)

__all__ = [
    "OpCounter",
    "NULL_OPS",
    "NullOps",
    "relative_error",
    "mean_relative_error",
    "recall",
    "precision",
    "f1_score",
    "heavy_hitter_truth",
    "top_k_truth",
    "change_truth",
    "exact_counts",
    "l2_norm",
    "empirical_entropy",
    "gbps_to_mpps",
    "mpps_to_gbps",
    "cycles_per_packet_to_mpps",
    "mpps_to_cycles_per_packet",
    "LINE_RATE_10G_64B_MPPS",
    "LINE_RATE_40G_64B_MPPS",
]
