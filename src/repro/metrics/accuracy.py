"""Accuracy metrics used throughout the paper's evaluation (Section 7).

The paper reports, per task:

* *relative error* ``|t - t_real| / t_real`` for scalar estimates
  (entropy, distinct count, change magnitude);
* *mean relative error* over the set of detected heavy flows (Figures
  11, 12, 14);
* *recall* -- the ratio of true instances found (Figure 15).

Ground-truth helpers compute exact flow counts and empirical entropy from
a key sequence.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, Mapping, Sequence, Set


def relative_error(estimate: float, truth: float) -> float:
    """Return ``|estimate - truth| / truth``.

    A truth of zero with a nonzero estimate yields ``inf``; zero/zero
    yields ``0.0`` (a correct estimate of an absent quantity).
    """
    if truth == 0:
        return 0.0 if estimate == 0 else math.inf
    return abs(estimate - truth) / abs(truth)


def mean_relative_error(
    estimates: Mapping[int, float], truths: Mapping[int, float]
) -> float:
    """Mean relative error over the keys of ``estimates``.

    This matches the paper's heavy-hitter error metric: the error is
    averaged over the *detected* flows, each compared to its true size.
    Returns 0.0 when ``estimates`` is empty.
    """
    if not estimates:
        return 0.0
    total = 0.0
    for key, estimate in estimates.items():
        total += relative_error(estimate, truths.get(key, 0))
    return total / len(estimates)


def recall(found: Set[int], truth: Set[int]) -> float:
    """Fraction of true instances found.  1.0 when truth is empty."""
    if not truth:
        return 1.0
    return len(found & truth) / len(truth)


def precision(found: Set[int], truth: Set[int]) -> float:
    """Fraction of reported instances that are true.  1.0 when none reported."""
    if not found:
        return 1.0
    return len(found & truth) / len(found)


def f1_score(found: Set[int], truth: Set[int]) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(found, truth)
    r = recall(found, truth)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def exact_counts(keys: Iterable[int]) -> Dict[int, int]:
    """Exact per-flow packet counts (the ground-truth frequency vector)."""
    return dict(Counter(keys))


def heavy_hitter_truth(
    counts: Mapping[int, int], threshold_fraction: float
) -> Set[int]:
    """Flows whose count exceeds ``threshold_fraction`` of the total (L1).

    The paper uses a 0.05% threshold of total traffic for the HH and
    change-detection tasks (Section 7, "Sketches and metrics").
    """
    total = sum(counts.values())
    threshold = threshold_fraction * total
    return {key for key, count in counts.items() if count > threshold}


def top_k_truth(counts: Mapping[int, int], k: int) -> Set[int]:
    """The ``k`` largest flows (ties broken by key for determinism)."""
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return {key for key, _ in ranked[:k]}


def empirical_entropy(counts: Mapping[int, int]) -> float:
    """Empirical Shannon entropy (base 2) of the flow-size distribution.

    ``H = -sum (f_x / m) log2 (f_x / m)`` where ``m`` is the total packet
    count -- the entropy definition the paper's entropy-estimation task
    targets (via Lall et al. [52]).
    """
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        if count > 0:
            frac = count / total
            entropy -= frac * math.log2(frac)
    return entropy


def change_truth(
    before: Mapping[int, int],
    after: Mapping[int, int],
    threshold_fraction: float,
) -> Set[int]:
    """Flows whose count change across two epochs exceeds the threshold.

    Change detection (K-ary sketch, [51]): a flow is a *heavy changer* if
    ``|f_after - f_before|`` exceeds ``threshold_fraction`` of the total
    change ``sum |f_after - f_before|``.
    """
    keys = set(before) | set(after)
    deltas = {key: abs(after.get(key, 0) - before.get(key, 0)) for key in keys}
    total_change = sum(deltas.values())
    if total_change == 0:
        return set()
    threshold = threshold_fraction * total_change
    return {key for key, delta in deltas.items() if delta > threshold}


def l2_norm(counts: Mapping[int, int]) -> float:
    """The second norm of the frequency vector (paper Section 5)."""
    return math.sqrt(sum(value * value for value in counts.values()))


def median(values: Sequence[float]) -> float:
    """Median with the even-length convention of sketch row aggregation.

    Sketch implementations conventionally take the lower-middle element
    for even row counts (so the estimate is one of the row estimates,
    never an average of two).  Kept here so all sketches agree.
    """
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of an empty sequence")
    return ordered[(len(ordered) - 1) // 2]
