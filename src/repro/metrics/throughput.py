"""Throughput unit conversions.

The paper quotes rates in both Gbps (wire throughput, including Ethernet
framing overhead) and Mpps (packets per second).  The conversions here use
the standard Ethernet accounting the paper's numbers imply:

* each packet on the wire costs its payload size plus 20 bytes of
  preamble + inter-frame gap + FCS framing (so a 64 B packet occupies
  84 B of wire time);
* 10 Gbps of 64 B packets = 14.88 Mpps and 40 Gbps = 59.52 Mpps, the
  figures quoted in Sections 2 and 7.
"""

from __future__ import annotations

#: Per-packet Ethernet overhead on the wire (preamble 8 B + IFG 12 B), bytes.
WIRE_OVERHEAD_BYTES = 20

#: Line-rate packet rates for minimum-sized (64 B) packets, in Mpps.
LINE_RATE_10G_64B_MPPS = 14.88
LINE_RATE_40G_64B_MPPS = 59.52


def gbps_to_mpps(gbps: float, packet_size_bytes: float) -> float:
    """Convert a wire rate in Gbps to Mpps for a given mean packet size."""
    if packet_size_bytes <= 0:
        raise ValueError("packet size must be positive")
    bits_per_packet = (packet_size_bytes + WIRE_OVERHEAD_BYTES) * 8
    return gbps * 1e9 / bits_per_packet / 1e6


def mpps_to_gbps(mpps: float, packet_size_bytes: float) -> float:
    """Convert a packet rate in Mpps to a wire rate in Gbps."""
    if packet_size_bytes <= 0:
        raise ValueError("packet size must be positive")
    bits_per_packet = (packet_size_bytes + WIRE_OVERHEAD_BYTES) * 8
    return mpps * 1e6 * bits_per_packet / 1e9


def cycles_per_packet_to_mpps(cycles_per_packet: float, clock_ghz: float) -> float:
    """Packet rate a core sustains spending ``cycles_per_packet`` per packet."""
    if cycles_per_packet <= 0:
        raise ValueError("cycles per packet must be positive")
    return clock_ghz * 1e9 / cycles_per_packet / 1e6


def mpps_to_cycles_per_packet(mpps: float, clock_ghz: float) -> float:
    """Cycle budget per packet available at a given packet rate."""
    if mpps <= 0:
        raise ValueError("packet rate must be positive")
    return clock_ghz * 1e9 / (mpps * 1e6)
