"""Per-category CPU operation counters.

The paper's bottleneck analysis (Section 3) decomposes a sketch's
per-packet cost into hash computations (``H``), counter updates with
memory copies (``C``), and heavy-key bookkeeping such as heap updates
(``P``); Section 4.1 adds per-packet PRNG draws as a fourth cost.  Every
sketch, baseline, and switch component in this repository records its work
into an :class:`OpCounter` with exactly those categories, and
:mod:`repro.switchsim.costmodel` converts the counts into CPU cycles and
throughput.  This makes "who is faster and by how much" an *observed*
property of the implementations rather than an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class OpCounter:
    """Mutable tally of bottleneck operations.

    Attributes mirror the paper's cost taxonomy:

    * ``hashes`` -- independent hash computations (cost ``H`` each).
    * ``counter_updates`` -- sketch counter read-modify-writes (cost ``C``).
    * ``heap_ops`` -- heavy-key structure operations (cost ``P``).
    * ``prng_draws`` -- random number generations (coin flips / geometric).
    * ``memcpys`` -- packet-header or buffer copies.
    * ``table_lookups`` -- hash-table probes (baselines, switch caches).
    * ``packets`` -- packets processed, the denominator for all rates.
    """

    hashes: int = 0
    counter_updates: int = 0
    heap_ops: int = 0
    prng_draws: int = 0
    memcpys: int = 0
    table_lookups: int = 0
    packets: int = 0
    #: Direct cycle charges for work outside the operation taxonomy
    #: (PMD receive, miniflow extraction, graph-node dispatch, ...).
    fixed_cycles: float = 0.0

    def hash(self, count: int = 1) -> None:
        self.hashes += count

    def counter_update(self, count: int = 1) -> None:
        self.counter_updates += count

    def heap_op(self, count: int = 1) -> None:
        self.heap_ops += count

    def prng(self, count: int = 1) -> None:
        self.prng_draws += count

    def memcpy(self, count: int = 1) -> None:
        self.memcpys += count

    def table_lookup(self, count: int = 1) -> None:
        self.table_lookups += count

    def packet(self, count: int = 1) -> None:
        self.packets += count

    def fixed(self, cycles: float) -> None:
        """Charge raw cycles (pipeline overheads outside the taxonomy)."""
        self.fixed_cycles += cycles

    def reset(self) -> None:
        """Zero all counters (each field back to its declared default)."""
        for spec in fields(self):
            setattr(self, spec.name, spec.default)

    def as_dict(self) -> Dict[str, int]:
        """Return the counts as a plain dictionary (field order)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def per_packet(self) -> Dict[str, float]:
        """Return per-packet averages (the paper's ``d1·H + d2·C + P`` view)."""
        denom = max(self.packets, 1)
        return {
            name: count / denom
            for name, count in self.as_dict().items()
            if name != "packets"
        }

    def merge(self, other: "OpCounter") -> None:
        """Accumulate another counter's totals into this one.

        Iterates :func:`dataclasses.fields` so a newly added category can
        never silently drift out of ``merge``/``reset``/``as_dict``.
        """
        for spec in fields(self):
            setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name))


class NullOps:
    """A no-op counter with the :class:`OpCounter` recording interface.

    Used as the default ``ops`` sink so the accuracy-only code paths pay
    nothing for instrumentation.
    """

    __slots__ = ()

    def hash(self, count: int = 1) -> None:
        pass

    def counter_update(self, count: int = 1) -> None:
        pass

    def heap_op(self, count: int = 1) -> None:
        pass

    def prng(self, count: int = 1) -> None:
        pass

    def memcpy(self, count: int = 1) -> None:
        pass

    def table_lookup(self, count: int = 1) -> None:
        pass

    def packet(self, count: int = 1) -> None:
        pass

    def fixed(self, cycles: float) -> None:
        pass

    def reset(self) -> None:
        pass


#: Shared no-op sink; safe because :class:`NullOps` is stateless.
NULL_OPS = NullOps()
