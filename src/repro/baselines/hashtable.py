"""Per-flow hash-table monitoring (Alipourfard et al. [1, 2], "Small-HT").

The simplest possible monitor: one exact counter per flow in a hash
table.  On skewed traffic with few flows this is both exact and fast --
which is precisely the argument of [1, 2] -- but it is *not robust*
(paper Section 2): the table grows with the number of flows, falls out of
the last-level cache, and every update then takes a DRAM miss
(Figure 3a's throughput collapse past ~1M flows).  Memory and operation
counts are tracked so the cost model reproduces that collapse.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.sketches.base import Sketch

#: Bytes per table entry: 13 B five-tuple key padded + 8 B counter +
#: pointer/overhead, matching a compact C open-addressing table.
ENTRY_BYTES = 32


class HashTableMonitor(Sketch):
    """Exact per-flow counters in a dictionary."""

    def __init__(self) -> None:
        self._table: Dict[int, float] = {}

    def update(self, key: int, weight: float = 1.0) -> None:
        self.ops.packet()
        self.ops.hash()
        self.ops.table_lookup()
        self.ops.counter_update()
        self._table[key] = self._table.get(key, 0.0) + weight

    def update_many(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.update(key)

    def query(self, key: int) -> float:
        return self._table.get(key, 0.0)

    def flow_count(self) -> int:
        """Number of distinct flows currently tracked (exact)."""
        return len(self._table)

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """All flows above an absolute packet-count threshold (exact)."""
        hitters = [
            (key, count) for key, count in self._table.items() if count > threshold
        ]
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def memory_bytes(self) -> int:
        """Working-set size -- the quantity that breaks LLC residency."""
        return len(self._table) * ENTRY_BYTES

    def reset(self) -> None:
        self._table.clear()
