"""Hierarchical heavy hitters: deterministic and randomized (R-HHH).

Hierarchical heavy hitters generalise HH to IP-prefix hierarchies: a /16
prefix can be heavy even when no single /32 under it is.  The paper's
Table 1 cites two relevant algorithms:

* :class:`HierarchicalHeavyHitters` -- the deterministic baseline of
  Mitzenmacher, Steinke & Thaler [64]: one Space-Saving/Misra-Gries
  instance per hierarchy level, *all* levels updated per packet
  (O(levels) per packet).
* :class:`RandomizedHHH` -- R-HHH (Ben Basat et al., SIGCOMM 2017 [8]):
  per packet, pick ONE random level and update only it, scaling all
  estimates by the number of levels.  This is the O(1)-update trick that
  reaches 14.88 Mpps in Table 1 -- robust, but supporting *only* this
  task (the generality gap NitroSketch closes).

Keys are 32-bit source addresses; the hierarchy is byte-aligned prefix
masking (/8, /16, /24, /32) by default.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.hashing.prng import XorShift64Star
from repro.metrics.opcount import NULL_OPS
from repro.sketches.misra_gries import MisraGries

#: Byte-aligned IPv4 prefix lengths, shallowest first.
DEFAULT_PREFIX_LENGTHS = (8, 16, 24, 32)


def prefix_of(address: int, prefix_length: int) -> int:
    """Mask a 32-bit address down to its ``prefix_length``-bit prefix."""
    if not 0 <= prefix_length <= 32:
        raise ValueError("prefix_length must be in [0, 32]")
    if prefix_length == 0:
        return 0
    mask = ((1 << prefix_length) - 1) << (32 - prefix_length)
    return address & mask


class HierarchicalHeavyHitters:
    """Deterministic HHH: every level updated on every packet."""

    def __init__(
        self,
        counters_per_level: int = 512,
        prefix_lengths: Sequence[int] = DEFAULT_PREFIX_LENGTHS,
    ) -> None:
        if not prefix_lengths:
            raise ValueError("at least one prefix length required")
        self.prefix_lengths = tuple(sorted(prefix_lengths))
        self.levels: Dict[int, MisraGries] = {
            length: MisraGries(counters_per_level) for length in self.prefix_lengths
        }
        self.ops = NULL_OPS
        self.total = 0.0

    def update(self, address: int, weight: float = 1.0) -> None:
        self.ops.packet()
        self.total += weight
        for length in self.prefix_lengths:
            level = self.levels[length]
            level.ops = self.ops
            level.update(prefix_of(address, length), weight)
            self.ops.packet(-1)  # inner MG counted the packet again

    def update_many(self, addresses: Iterable[int]) -> None:
        for address in addresses:
            self.update(address)

    def query(self, address: int, prefix_length: int) -> float:
        """Estimated traffic of one prefix."""
        return self.levels[prefix_length].query(prefix_of(address, prefix_length))

    def heavy_prefixes(self, threshold_fraction: float) -> List[Tuple[int, int, float]]:
        """All (prefix, length, estimate) above a fraction of total traffic."""
        threshold = threshold_fraction * self.total
        result = []
        for length in self.prefix_lengths:
            for prefix, estimate in self.levels[length].items():
                if estimate > threshold:
                    result.append((prefix, length, estimate))
        result.sort(key=lambda item: (-item[2], item[1], item[0]))
        return result

    def _scaled_items(self, length: int) -> List[Tuple[int, float]]:
        """Per-level (prefix, estimate) pairs; hook for R-HHH scaling."""
        return self.levels[length].items()

    def hierarchical_heavy_hitters(
        self, threshold_fraction: float
    ) -> List[Tuple[int, int, float]]:
        """Conditioned HHH extraction (the task's proper semantics).

        A prefix is a *hierarchical* heavy hitter if its traffic minus
        the traffic of its already-reported HHH descendants still exceeds
        the threshold -- so an aggregate of mice (a scanning /16, say) is
        reported once at its own level rather than echoing every heavy
        /32 up the hierarchy.  Standard bottom-up extraction over the
        per-level summaries (Mitzenmacher et al. [64]).
        """
        threshold = threshold_fraction * self.total
        reported: List[Tuple[int, int, float]] = []
        # Walk from the most specific level upward.
        for length in sorted(self.prefix_lengths, reverse=True):
            for prefix, estimate in self._scaled_items(length):
                # Subtract descendants already reported as HHHs.
                discounted = estimate
                for r_prefix, r_length, r_estimate in reported:
                    if r_length > length and prefix_of(r_prefix, length) == prefix:
                        discounted -= r_estimate
                if discounted > threshold:
                    reported.append((prefix, length, discounted))
        reported.sort(key=lambda item: (item[1], -item[2], item[0]))
        return reported

    def memory_bytes(self) -> int:
        return sum(level.memory_bytes() for level in self.levels.values())

    def reset(self) -> None:
        for level in self.levels.values():
            level.reset()
        self.total = 0.0


class RandomizedHHH(HierarchicalHeavyHitters):
    """R-HHH: one uniformly random level updated per packet (O(1))."""

    def __init__(
        self,
        counters_per_level: int = 512,
        prefix_lengths: Sequence[int] = DEFAULT_PREFIX_LENGTHS,
        seed: int = 0,
    ) -> None:
        super().__init__(counters_per_level, prefix_lengths)
        self._rng = XorShift64Star(seed ^ 0x8888)
        self.num_levels = len(self.prefix_lengths)

    def update(self, address: int, weight: float = 1.0) -> None:
        self.ops.packet()
        self.ops.prng()
        self.total += weight
        chosen = self.prefix_lengths[self._rng.next_below(self.num_levels)]
        level = self.levels[chosen]
        level.ops = self.ops
        level.update(prefix_of(address, chosen), weight)
        self.ops.packet(-1)  # inner MG counted the packet again

    def query(self, address: int, prefix_length: int) -> float:
        """Estimate scaled by the level count (each level sees ~1/L of traffic)."""
        raw = self.levels[prefix_length].query(prefix_of(address, prefix_length))
        return raw * self.num_levels

    def heavy_prefixes(self, threshold_fraction: float) -> List[Tuple[int, int, float]]:
        threshold = threshold_fraction * self.total
        result = []
        for length in self.prefix_lengths:
            for prefix, estimate in self.levels[length].items():
                scaled = estimate * self.num_levels
                if scaled > threshold:
                    result.append((prefix, length, scaled))
        result.sort(key=lambda item: (-item[2], item[1], item[0]))
        return result

    def _scaled_items(self, length: int) -> List[Tuple[int, float]]:
        # Each level sees ~1/L of the stream; scale estimates back up so
        # the conditioned HHH extraction works in stream units.
        return [
            (prefix, estimate * self.num_levels)
            for prefix, estimate in self.levels[length].items()
        ]
