"""Comparison systems from the paper's related work (Section 2, Table 1).

* :class:`HashTableMonitor` -- the "small hash tables suffice" approach of
  Alipourfard et al. [1, 2]; exact but not robust to many flows.
* :class:`SketchVisor` -- fast-path (improved Misra-Gries) + normal-path
  sketch with control-plane merge [43].
* :class:`ElasticSketch` -- heavy part (vote-based buckets) + Count-Min
  light part [73].
* :class:`NetFlowMonitor` / :class:`SFlowMonitor` -- packet-sampled flow
  records, the default monitoring tools on OVS/VPP [21, 71].
* :class:`RandomizedHHH` -- R-HHH, O(1)-update hierarchical heavy
  hitters [8].
"""

from repro.baselines.hashtable import HashTableMonitor
from repro.baselines.sketchvisor import SketchVisor, FastPathEntry
from repro.baselines.elastic import ElasticSketch, NitroElasticSketch
from repro.baselines.netflow import NetFlowMonitor, SFlowMonitor
from repro.baselines.rhhh import RandomizedHHH, HierarchicalHeavyHitters

__all__ = [
    "HashTableMonitor",
    "SketchVisor",
    "FastPathEntry",
    "ElasticSketch",
    "NitroElasticSketch",
    "NetFlowMonitor",
    "SFlowMonitor",
    "RandomizedHHH",
    "HierarchicalHeavyHitters",
]
