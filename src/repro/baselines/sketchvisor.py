"""SketchVisor (Huang et al., SIGCOMM 2017, paper ref [43]).

SketchVisor splits measurement into:

* a **normal path** -- the user's sketch (we use UnivMon, as the paper's
  comparison does), accurate but slow; and
* a **fast path** -- a small hash table driven by an *improved
  Misra-Gries* algorithm that absorbs packets whenever the normal path's
  queue backs up.

The fast path is Misra-Gries with the lazy-decrement improvement: a
global ``base`` offset stands in for MG's "decrement every counter"
step, so kick-outs are amortised O(1) (the role of the extra per-entry
counters in the SketchVisor paper is played by ``stored`` vs ``base``).
A flow's residual ``stored - base`` is a guaranteed lower bound on its
size; ``base`` bounds the undercount, and estimates report the midpoint
``residual + base/2``.  At the end of an epoch the control plane
*merges*: every fast-path flow's counts are added into the normal
path's estimates (the computationally intensive recovery step the
NitroSketch paper calls out in Section 4.3).

Robustness caveat reproduced here (paper Figures 13a/14): when a large
fraction of traffic takes the fast path on heavy-tailed traces, accuracy
degrades -- mice flows churn the table and the ``e`` error grows.

The source code of the original is not public; like the NitroSketch
authors, we reimplement the fast path from its published description.
"""

from __future__ import annotations

import heapq

from typing import Dict, Iterable, List, Optional, Tuple

from repro.hashing.prng import XorShift64Star
from repro.metrics.opcount import NULL_OPS
from repro.sketches.univmon import UnivMon


class FastPathEntry:
    """A resolved fast-path entry view: (estimate, bounds).

    The table itself stores one absolute counter per key plus a global
    decrement base (the lazy-decrement trick that makes Misra-Gries
    amortised O(1)); this view materialises the derived quantities.
    """

    __slots__ = ("residual", "max_error")

    def __init__(self, residual: float, max_error: float) -> None:
        self.residual = residual
        self.max_error = max_error

    def estimate(self) -> float:
        """Midpoint estimate: residual + half the maximum undercount."""
        return self.residual + self.max_error / 2.0

    def guaranteed(self) -> float:
        """Lower bound on the flow's true size (the MG residual)."""
        return self.residual


class SketchVisor:
    """Fast path + normal path with control-plane merge.

    Parameters
    ----------
    fast_entries:
        Fast-path table capacity ``k`` (paper evaluation: 900 counters).
    normal_path:
        The accurate sketch; defaults to a UnivMon instance.
    fast_fraction:
        Fraction of packets routed to the fast path.  The NitroSketch
        evaluation drives this explicitly (20% / 50% / 100%) because the
        fast path only engages under load; we expose the same knob.
    """

    def __init__(
        self,
        fast_entries: int = 900,
        normal_path: Optional[UnivMon] = None,
        fast_fraction: float = 1.0,
        seed: int = 0,
    ) -> None:
        if fast_entries < 1:
            raise ValueError("fast_entries must be >= 1")
        if not 0.0 <= fast_fraction <= 1.0:
            raise ValueError("fast_fraction must be in [0, 1]")
        self.fast_entries = fast_entries
        self.fast_fraction = fast_fraction
        self.normal = normal_path if normal_path is not None else UnivMon(
            levels=8, depth=5, widths=2048, k=100, seed=seed
        )
        self._ops = NULL_OPS
        # Absolute counters; a key's MG residual is ``stored - base``.
        self._table: Dict[int, float] = {}
        # Lazy min-heap of (stored, key) snapshots for O(log k) slot
        # recycling; stale snapshots are refreshed on pop.
        self._eviction_heap: List[Tuple[float, int]] = []
        # Global decrement offset: MG's "decrement every counter" becomes
        # ``base += weight`` (the improved, amortised-O(1) variant).
        self._base = 0.0
        self._rng = XorShift64Star(seed ^ 0xFA57)
        self.fast_packets = 0
        self.normal_packets = 0
        self._merged: Optional[Dict[int, float]] = None

    @property
    def ops(self):
        """Operation sink; assigning it propagates to the normal path too."""
        return self._ops

    @ops.setter
    def ops(self, sink) -> None:
        self._ops = sink
        self.normal.ops = sink

    # -- data plane -----------------------------------------------------------

    def update(self, key: int, weight: float = 1.0) -> None:
        """Route one packet to the fast or normal path."""
        self._merged = None
        if self.fast_fraction >= 1.0 or (
            self.fast_fraction > 0.0 and self._rng.next_float() < self.fast_fraction
        ):
            self._fast_update(key, weight)
        else:
            self.normal_packets += 1
            self.normal.update(key, weight)

    def update_many(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.update(key)

    def _fast_update(self, key: int, weight: float) -> None:
        self.fast_packets += 1
        self.ops.packet()
        # SketchVisor hands every packet through a FIFO into the
        # measurement path (Section 7.4 uses the same buffer as our
        # separate-thread NitroSketch); bill the header copy.
        self.ops.memcpy()
        self.ops.hash()
        self.ops.table_lookup()
        stored = self._table.get(key)
        if stored is not None:
            if stored <= self._base:
                # Zombie entry (decremented to zero): re-admit.
                stored = self._base
            self._table[key] = stored + weight
            heapq.heappush(self._eviction_heap, (stored + weight, key))
            self.ops.counter_update()
            return
        if len(self._table) < self.fast_entries:
            self._table[key] = self._base + weight
            heapq.heappush(self._eviction_heap, (self._base + weight, key))
            self.ops.counter_update()
            return
        # Table full: recycle a decremented-to-zero slot if one exists,
        # otherwise run MG's decrement-all (base += weight) and absorb the
        # packet -- the kick-out operation of the improved algorithm.
        zombie = self._pop_zombie()
        if zombie is not None:
            del self._table[zombie]
            self._table[key] = self._base + weight
            heapq.heappush(self._eviction_heap, (self._base + weight, key))
            self.ops.counter_update(2)
        else:
            self._base += weight
            self.ops.counter_update()
        self.ops.heap_op()

    def _pop_zombie(self) -> Optional[int]:
        """Return a key whose counter fell to/below the decrement base."""
        while self._eviction_heap:
            stored, key = self._eviction_heap[0]
            current = self._table.get(key)
            if current is None:
                heapq.heappop(self._eviction_heap)  # already recycled
                continue
            if current > stored:
                # Snapshot is stale: drop it (a fresher one exists).
                heapq.heappop(self._eviction_heap)
                continue
            if current <= self._base:
                heapq.heappop(self._eviction_heap)
                return key
            return None
        return None

    def fast_entry(self, key: int) -> Optional[FastPathEntry]:
        """Materialise the (residual, max_error) view of a tracked flow."""
        stored = self._table.get(key)
        if stored is None or stored <= self._base:
            return None
        return FastPathEntry(stored - self._base, self._base)

    # -- control plane ----------------------------------------------------------

    def merge(self) -> Dict[int, float]:
        """Merge fast-path state into normal-path estimates (end of epoch).

        Returns the merged per-flow estimates for every flow known to
        either path.  This models SketchVisor's SDN-controller recovery
        step; its cost is why the NitroSketch paper notes the approach is
        "computationally intensive" for the control plane.
        """
        if self._merged is not None:
            return self._merged
        merged: Dict[int, float] = {}
        for key in self._table:
            entry = self.fast_entry(key)
            if entry is not None:
                merged[key] = entry.estimate()
        for key, estimate in self.normal.sketches[0].top_items():
            merged[key] = merged.get(key, 0.0) + estimate
        self._merged = merged
        return merged

    def query(self, key: int) -> float:
        """Merged estimate for one flow."""
        merged = self.merge()
        if key in merged:
            return merged[key]
        if self.normal_packets > 0:
            return self.normal.query(key)
        return 0.0

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Flows detected above ``threshold``, with merged estimates.

        Detection gates on each fast-path entry's *guaranteed* count
        (``count - error``) so churn-inflated mice are not reported as
        heavy -- without this the Space-Saving upper bounds would flood
        the detected set with false positives whose relative error is
        unbounded.  Reported estimates remain the midpoint estimates.
        """
        merged = self.merge()
        hitters = []
        for key, estimate in merged.items():
            entry = self.fast_entry(key)
            if entry is not None:
                normal_part = estimate - entry.estimate()
                gate = entry.guaranteed() + normal_part
            else:
                gate = estimate
            if gate > threshold:
                hitters.append((key, estimate))
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    # -- bookkeeping -------------------------------------------------------------

    def memory_bytes(self) -> int:
        fast = self.fast_entries * 3 * 8  # three counters per entry
        return fast + self.normal.memory_bytes()

    def reset(self) -> None:
        self._table.clear()
        self._eviction_heap.clear()
        self._base = 0.0
        self.fast_packets = 0
        self.normal_packets = 0
        self._merged = None
        self.normal.reset()
