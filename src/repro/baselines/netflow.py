"""NetFlow- and sFlow-style sampled monitoring (paper refs [21, 71]).

The default monitoring tools on OVS-DPDK (sFlow) and VPP (NetFlow),
used as the Figure 13(b)/15 comparison:

* **NetFlow**: sample each packet with probability ``p``; sampled
  packets create or update a *flow record* (key, packets, bytes, first/
  last timestamps).  Estimates scale by ``1/p``.  Memory grows with the
  number of *sampled flows* -- at ``p = 0.01`` on a heavy-tailed trace
  that is most flows, which is why Figure 13(b) shows NetFlow consuming
  far more memory than NitroSketch at the same sampling rate.
* **sFlow**: sample with probability ``p`` and export the *packet
  header* to the collector; the collector aggregates.  The switch-side
  state is a small export buffer, but the collector sees only a ``p``
  fraction of traffic, so recall on heavy-tailed traces suffers
  (Figure 15).

Both miss small flows entirely at low sampling rates -- the recall gap
NitroSketch's always-on counter arrays close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.hashing.prng import XorShift64Star
from repro.metrics.opcount import NULL_OPS

#: Bytes per NetFlow v5-style record (key, counters, timestamps, ports).
FLOW_RECORD_BYTES = 48
#: Bytes per exported sFlow sample (flow key + truncated header).
SFLOW_SAMPLE_BYTES = 24


@dataclass
class FlowRecord:
    """A NetFlow record for one sampled flow."""

    key: int
    sampled_packets: float = 0.0
    sampled_bytes: float = 0.0
    first_seen: Optional[float] = None
    last_seen: Optional[float] = None


class NetFlowMonitor:
    """Packet-sampled flow records with inverse-probability estimates.

    ``active_timeout`` / ``inactive_timeout`` reproduce real NetFlow
    cache semantics: a record is exported (and its table slot freed)
    when its flow has been idle for ``inactive_timeout`` seconds or
    continuously active for ``active_timeout`` seconds.  Timeouts are
    evaluated lazily against packet timestamps via :meth:`expire`;
    exported records accumulate in ``exported`` (the collector's view).
    Both default to None (no expiry), matching the paper's single-epoch
    measurements.
    """

    def __init__(
        self,
        sampling_rate: float,
        seed: int = 0,
        active_timeout: Optional[float] = None,
        inactive_timeout: Optional[float] = None,
    ) -> None:
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError("sampling_rate must be in (0, 1], got %r" % (sampling_rate,))
        for timeout in (active_timeout, inactive_timeout):
            if timeout is not None and timeout <= 0:
                raise ValueError("timeouts must be positive when given")
        self.sampling_rate = sampling_rate
        self.active_timeout = active_timeout
        self.inactive_timeout = inactive_timeout
        self.ops = NULL_OPS
        self._rng = XorShift64Star(seed ^ 0x17F10)
        self._records: Dict[int, FlowRecord] = {}
        #: Records exported by timeout expiry (the collector's archive).
        self.exported: list = []
        self.packets_seen = 0
        self.packets_sampled = 0

    def expire(self, now: float) -> int:
        """Export records past their timeouts; returns how many expired."""
        if self.active_timeout is None and self.inactive_timeout is None:
            return 0
        expired = []
        for key, record in self._records.items():
            first = record.first_seen if record.first_seen is not None else now
            last = record.last_seen if record.last_seen is not None else now
            if (
                self.inactive_timeout is not None
                and now - last >= self.inactive_timeout
            ):
                expired.append(key)
            elif (
                self.active_timeout is not None
                and now - first >= self.active_timeout
            ):
                expired.append(key)
        for key in expired:
            self.exported.append(self._records.pop(key))
        return len(expired)

    def update(
        self,
        key: int,
        size_bytes: float = 0.0,
        timestamp: Optional[float] = None,
    ) -> None:
        """Offer one packet; a coin flip decides whether a record is touched."""
        self.packets_seen += 1
        self.ops.packet()
        self.ops.prng()
        if self._rng.next_float() >= self.sampling_rate:
            return
        self.packets_sampled += 1
        self.ops.hash()
        self.ops.table_lookup()
        self.ops.counter_update()
        if timestamp is not None:
            self.expire(timestamp)
        record = self._records.get(key)
        if record is None:
            record = FlowRecord(key)
            self._records[key] = record
            record.first_seen = timestamp
        record.sampled_packets += 1
        record.sampled_bytes += size_bytes
        record.last_seen = timestamp

    def update_many(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.update(key)

    def update_batch(self, keys: "np.ndarray", seed_offset: int = 0) -> None:
        """Vectorised ingest: one Bernoulli mask, then grouped record updates.

        Statistically equivalent to per-packet :meth:`update` (independent
        RNG stream).
        """
        keys = np.asarray(keys)
        count = len(keys)
        if count == 0:
            return
        self.packets_seen += count
        self.ops.packet(count)
        self.ops.prng(count)
        rng = np.random.default_rng((self._rng.next_u64() + seed_offset) & 0xFFFFFFFF)
        mask = rng.random(count) < self.sampling_rate
        sampled = keys[mask]
        self.packets_sampled += int(sampled.size)
        if sampled.size == 0:
            return
        self.ops.hash(int(sampled.size))
        self.ops.table_lookup(int(sampled.size))
        self.ops.counter_update(int(sampled.size))
        unique, counts = np.unique(sampled, return_counts=True)
        for key, sampled_count in zip(unique.tolist(), counts.tolist()):
            record = self._records.get(key)
            if record is None:
                record = FlowRecord(key)
                self._records[key] = record
            record.sampled_packets += sampled_count

    def query(self, key: int) -> float:
        """Estimated packet count (sampled count scaled by ``1/p``)."""
        record = self._records.get(key)
        if record is None:
            return 0.0
        return record.sampled_packets / self.sampling_rate

    def recorded_flows(self) -> Set[int]:
        """Keys with at least one sampled packet -- NetFlow's visibility."""
        return set(self._records)

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Flows whose scaled estimate exceeds ``threshold``."""
        hitters = [
            (key, record.sampled_packets / self.sampling_rate)
            for key, record in self._records.items()
            if record.sampled_packets / self.sampling_rate > threshold
        ]
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def memory_bytes(self) -> int:
        """Switch-side record-table footprint (Figure 13b's metric)."""
        return len(self._records) * FLOW_RECORD_BYTES

    def reset(self) -> None:
        self._records.clear()
        self.exported.clear()
        self.packets_seen = 0
        self.packets_sampled = 0


class SFlowMonitor:
    """sFlow: export sampled headers, aggregate at the collector."""

    def __init__(self, sampling_rate: float, seed: int = 0) -> None:
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError("sampling_rate must be in (0, 1], got %r" % (sampling_rate,))
        self.sampling_rate = sampling_rate
        self.ops = NULL_OPS
        self._rng = XorShift64Star(seed ^ 0x5F10)
        #: Collector-side per-flow sampled counts.
        self._collector: Dict[int, float] = {}
        self.packets_seen = 0
        self.packets_sampled = 0

    def update(self, key: int, size_bytes: float = 0.0) -> None:
        self.packets_seen += 1
        self.ops.packet()
        self.ops.prng()
        if self._rng.next_float() >= self.sampling_rate:
            return
        self.packets_sampled += 1
        self.ops.memcpy()  # header export
        self._collector[key] = self._collector.get(key, 0.0) + 1.0

    def update_many(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.update(key)

    def query(self, key: int) -> float:
        return self._collector.get(key, 0.0) / self.sampling_rate

    def recorded_flows(self) -> Set[int]:
        return set(self._collector)

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        hitters = [
            (key, count / self.sampling_rate)
            for key, count in self._collector.items()
            if count / self.sampling_rate > threshold
        ]
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def memory_bytes(self) -> int:
        """Collector-side aggregation state."""
        return len(self._collector) * SFLOW_SAMPLE_BYTES

    def reset(self) -> None:
        self._collector.clear()
        self.packets_seen = 0
        self.packets_sampled = 0
