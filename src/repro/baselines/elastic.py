"""ElasticSketch (Yang et al., SIGCOMM 2018, paper ref [73]).

ElasticSketch splits processing into:

* a **heavy part** -- a hash table of buckets, each holding
  ``(key, positive_votes, negative_votes, flag)``.  A packet whose flow
  owns its bucket increments ``positive_votes``; otherwise it increments
  ``negative_votes`` and, when ``negative/positive >= lambda`` (the vote
  threshold, 8 in the ElasticSketch paper), *evicts* the incumbent into
  the light part and takes the bucket (setting the newcomer's ``flag``
  because part of its history now lives in the light part);
* a **light part** -- a single-row Count-Min of byte-ish counters that
  absorbs evicted and non-resident (mice) traffic.

Queries: a flagged heavy flow adds its light-part estimate; pure-light
flows read the light part alone.

Reproduced limitations (paper Section 2, Figure 3b):

* distinct-flow counting runs linear counting over the light part's
  zero-counter fraction -- it *overflows* when flows exceed the array
  size (relative error > 100%);
* entropy is estimated from heavy flows plus light counters treated as
  per-flow sizes -- collisions inflate the error as flows grow;
* the light part is a Count-Min, so only L1-type guarantees survive
  (no robust L2/entropy guarantee).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.hashing.families import MultiplyShiftHash, derive_seeds
from repro.metrics.opcount import NULL_OPS


class _Bucket:
    """One heavy-part bucket."""

    __slots__ = ("key", "positive", "negative", "flag")

    def __init__(self) -> None:
        self.key: Optional[int] = None
        self.positive = 0.0
        self.negative = 0.0
        self.flag = False


class ElasticSketch:
    """Heavy/light two-part sketch.

    Parameters
    ----------
    heavy_buckets:
        Number of heavy-part buckets.
    light_counters:
        Width of the single-row Count-Min light part.
    vote_threshold:
        The eviction ratio ``lambda`` (8 in the original paper).

    The paper's Figure 3b uses a 2.7 MB ElasticSketch; with 16-byte heavy
    buckets and 1-byte light counters, :func:`ElasticSketch.with_memory`
    reproduces that sizing.
    """

    def __init__(
        self,
        heavy_buckets: int = 32768,
        light_counters: int = 262144,
        vote_threshold: float = 8.0,
        seed: int = 0,
    ) -> None:
        if heavy_buckets < 1 or light_counters < 1:
            raise ValueError("heavy_buckets and light_counters must be >= 1")
        if vote_threshold <= 0:
            raise ValueError("vote_threshold must be positive")
        self.heavy_buckets = heavy_buckets
        self.light_counters = light_counters
        self.vote_threshold = vote_threshold
        self.ops = NULL_OPS
        seeds = derive_seeds(seed, 2)
        self._heavy_hash = MultiplyShiftHash(heavy_buckets, seeds[0])
        self._light_hash = MultiplyShiftHash(light_counters, seeds[1])
        self._buckets = [_Bucket() for _ in range(heavy_buckets)]
        self._light = np.zeros(light_counters, dtype=np.float64)
        self.total = 0.0

    @classmethod
    def with_memory(
        cls, total_bytes: int, heavy_fraction: float = 0.25, seed: int = 0
    ) -> "ElasticSketch":
        """Size heavy/light parts from a total memory budget.

        ElasticSketch's recommended split gives ~25% to the heavy part;
        heavy buckets cost 16 B (key + votes + flag), light counters 1 B.
        """
        heavy_bytes = int(total_bytes * heavy_fraction)
        light_bytes = total_bytes - heavy_bytes
        return cls(
            heavy_buckets=max(1, heavy_bytes // 16),
            light_counters=max(1, light_bytes),
            seed=seed,
        )

    # -- data plane ---------------------------------------------------------

    def _light_update(self, key: int, weight: float) -> None:
        self.ops.hash()
        self.ops.counter_update()
        self._light[self._light_hash(key)] += weight

    def update(self, key: int, weight: float = 1.0) -> None:
        """The ElasticSketch insertion algorithm (1H, 1C, <=1 eviction)."""
        self.ops.packet()
        self.ops.hash()
        self.ops.table_lookup()
        self.total += weight
        bucket = self._buckets[self._heavy_hash(key)]
        if bucket.key is None:
            bucket.key = key
            bucket.positive = weight
            bucket.negative = 0.0
            bucket.flag = False
            self.ops.counter_update()
            return
        if bucket.key == key:
            bucket.positive += weight
            self.ops.counter_update()
            return
        bucket.negative += weight
        self.ops.counter_update()
        if bucket.negative / max(bucket.positive, 1e-12) < self.vote_threshold:
            # Not voted out yet: the newcomer's packet goes to the light part.
            self._light_update(key, weight)
            return
        # Eviction: incumbent's count moves to the light part; the newcomer
        # takes the bucket with its history flagged as split.
        self._light_update(bucket.key, bucket.positive)
        bucket.key = key
        bucket.positive = weight
        bucket.negative = 0.0
        bucket.flag = True
        self.ops.counter_update()

    def update_many(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.update(key)

    # -- queries ------------------------------------------------------------

    def light_query(self, key: int) -> float:
        return float(self._light[self._light_hash(key)])

    def query(self, key: int) -> float:
        bucket = self._buckets[self._heavy_hash(key)]
        if bucket.key == key:
            if bucket.flag:
                return bucket.positive + self.light_query(key)
            return bucket.positive
        return self.light_query(key)

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Heavy-part flows whose estimate exceeds ``threshold``."""
        hitters = []
        for bucket in self._buckets:
            if bucket.key is None:
                continue
            estimate = self.query(bucket.key)
            if estimate > threshold:
                hitters.append((bucket.key, estimate))
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def distinct_estimate(self) -> float:
        """Distinct flows via linear counting on the light part.

        Overflows to ``inf`` when every light counter is occupied -- the
        failure mode Figure 3b demonstrates ("the error ... exceeds 100%
        due to the overflow on its linear counting").
        """
        zero = int(np.count_nonzero(self._light == 0))
        heavy_flows = sum(1 for bucket in self._buckets if bucket.key is not None)
        if zero == 0:
            return math.inf
        light_flows = -self.light_counters * math.log(zero / self.light_counters)
        return heavy_flows + light_flows

    def entropy_estimate(self) -> float:
        """Entropy from heavy flows plus light counters as pseudo-flows.

        Accurate while light counters are collision-free; degrades as the
        flow count approaches the light width (Figure 3b's entropy curve).
        """
        if self.total <= 0:
            return 0.0
        gsum = 0.0
        for bucket in self._buckets:
            if bucket.key is None:
                continue
            size = bucket.positive
            if size > 1:
                gsum += size * math.log2(size)
        occupied = self._light[self._light > 1]
        if occupied.size:
            gsum += float(np.sum(occupied * np.log2(occupied)))
        return max(math.log2(self.total) - gsum / self.total, 0.0)

    # -- bookkeeping ----------------------------------------------------------

    def memory_bytes(self) -> int:
        return self.heavy_buckets * 16 + self.light_counters

    def reset(self) -> None:
        for bucket in self._buckets:
            bucket.key = None
            bucket.positive = 0.0
            bucket.negative = 0.0
            bucket.flag = False
        self._light.fill(0.0)
        self.total = 0.0


class NitroElasticSketch(ElasticSketch):
    """ElasticSketch with a NitroSketch-accelerated light part.

    Section 5 of the NitroSketch paper: "NitroSketch can further
    accelerate the slower light part (Count-Min Sketch) of
    ElasticSketch."  The heavy part's 1H/1C path is already cheap; the
    light part -- which absorbs every miss and eviction -- is where mice
    churn costs, so its updates are geometrically sampled at rate ``p``
    and scaled by ``p**-1``.

    Light-part reads stay unbiased; the linear-counting distinct
    estimator, however, loses fidelity under sampling (zero counters
    stay zero longer), which is reported via ``distinct_estimate`` as
    with the vanilla class -- an honest view of what the acceleration
    costs.
    """

    def __init__(
        self,
        heavy_buckets: int = 32768,
        light_counters: int = 262144,
        vote_threshold: float = 8.0,
        probability: float = 0.05,
        seed: int = 0,
    ) -> None:
        super().__init__(heavy_buckets, light_counters, vote_threshold, seed)
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1], got %r" % (probability,))
        from repro.core.geometric import GeometricSampler

        self.probability = probability
        self._sampler = GeometricSampler(probability, seed ^ 0xE1A5)
        # Light updates to skip before the next sampled one.
        self._pending = self._sampler.next_gap() - 1
        self.light_updates_offered = 0
        self.light_updates_applied = 0

    def _light_update(self, key: int, weight: float) -> None:
        self.light_updates_offered += 1
        if self._pending > 0:
            self._pending -= 1
            return
        self._pending = self._sampler.next_gap() - 1
        self.light_updates_applied += 1
        self.ops.hash()
        self.ops.counter_update()
        self._light[self._light_hash(key)] += weight / self.probability

    def reset(self) -> None:
        super().reset()
        self._pending = self._sampler.next_gap() - 1
        self.light_updates_offered = 0
        self.light_updates_applied = 0
