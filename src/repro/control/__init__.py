"""Control plane: epochs, measurement tasks, and estimation.

The paper splits NitroSketch into a data-plane Sketching module and a
control-plane Estimation module that "periodically (at the end of each
epoch) receives sketching data ... assigns the sketching data to the
corresponding measurement tasks based on user definitions, and
calculates the estimated results" (Section 6).

* :mod:`repro.control.tasks` -- the measurement-task definitions the
  evaluation uses: heavy hitters, change detection, entropy estimation,
  distinct-flow counting (Section 2's task list).
* :mod:`repro.control.plane` -- the epoch-driven controller that runs
  tasks against any monitor and collects per-epoch reports.
"""

from repro.control.tasks import (
    MeasurementTask,
    HeavyHitterTask,
    ChangeDetectionTask,
    EntropyTask,
    DistinctFlowsTask,
    TaskReport,
)
from repro.control.plane import ControlPlane, EpochReport, KAryChangeMonitor
from repro.control.windows import SlidingWindowMonitor, export_window_metrics
from repro.control.export import (
    ControlLink,
    deserialize_epoch_frame,
    deserialize_monitor,
    deserialize_sketch,
    export_cost,
    register_sketch_class,
    serialize_epoch_frame,
    serialize_monitor,
    serialize_sketch,
)
from repro.control.checkpoint import Checkpoint, CheckpointManager

__all__ = [
    "MeasurementTask",
    "HeavyHitterTask",
    "ChangeDetectionTask",
    "EntropyTask",
    "DistinctFlowsTask",
    "TaskReport",
    "ControlPlane",
    "EpochReport",
    "KAryChangeMonitor",
    "ControlLink",
    "serialize_sketch",
    "deserialize_sketch",
    "serialize_monitor",
    "deserialize_monitor",
    "serialize_epoch_frame",
    "deserialize_epoch_frame",
    "register_sketch_class",
    "export_cost",
    "SlidingWindowMonitor",
    "export_window_metrics",
    "Checkpoint",
    "CheckpointManager",
]
