"""Sketch/monitor serialization + control-plane transfer model.

The paper's control plane "periodically (at the end of each epoch)
receives sketching data from the data plane module through a 1GbE link"
(Section 6).  This module provides:

* a versioned, CRC-checked wire format (magic ``NSKW``, format version
  :data:`FORMAT_VERSION`) framing a JSON header plus raw binary counter
  sections;
* :func:`serialize_sketch` / :func:`deserialize_sketch` -- byte-exact
  round-trip of canonical sketches;
* :func:`serialize_monitor` / :func:`deserialize_monitor` -- byte-exact
  round-trip of *every* monitor: canonical sketches, NitroSketch
  wrappers (counters, top-k contents, controller state, the geometric
  ``_pending`` skip and both PRNG cursors -- a restored sketch replays
  identically), vanilla UnivMon and NitroUnivMon;
* :func:`register_sketch_class` -- extension hook for new canonical
  sketch classes;
* :class:`ControlLink` -- the 1 GbE transfer model: how long an epoch's
  sketch export occupies the management link, the quantity that bounds
  how small epochs can get in the paper's deployment.

Wire format (little-endian)::

    offset  size  field
    0       4     magic  b"NSKW"
    4       2     format version (currently 2)
    6       4     header length H
    10      H     header: UTF-8 JSON; "sections" lists section lengths
    10+H    ...   binary sections, concatenated in header order
    end-4   4     CRC32 (zlib) over every preceding byte

All scalar state (floats, big integers, PRNG cursors) rides in the JSON
header -- Python's ``json`` round-trips float64 exactly via ``repr`` and
has native big integers, so no precision is lost.  Counter grids ride as
raw float64 sections.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.sketches.base import CanonicalSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch
from repro.sketches.topk import TopK

MAGIC = b"NSKW"
#: Wire format version; bump on any layout change.
FORMAT_VERSION = 2

#: Registry of serializable canonical sketch classes.
_SKETCH_CLASSES: Dict[str, Type[CanonicalSketch]] = {
    "CountMinSketch": CountMinSketch,
    "CountSketch": CountSketch,
    "KArySketch": KArySketch,
}


def register_sketch_class(cls: Type[CanonicalSketch], name: Optional[str] = None) -> None:
    """Register a canonical sketch class for (de)serialization.

    The class must be constructible as ``cls(depth, width, seed,
    hash_family=...)``; an optional ``total`` attribute (KArySketch
    style) is carried automatically.
    """
    _SKETCH_CLASSES[name or cls.__name__] = cls


# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------


def _json_default(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError("not JSON-serializable: %r" % (type(value),))


def _frame(header: Dict[str, Any], sections: List[bytes]) -> bytes:
    """Assemble magic + version + header + sections + CRC."""
    header = dict(header)
    header["sections"] = [len(section) for section in sections]
    header_bytes = json.dumps(header, default=_json_default).encode("utf-8")
    body = b"".join(
        [
            MAGIC,
            FORMAT_VERSION.to_bytes(2, "little"),
            len(header_bytes).to_bytes(4, "little"),
            header_bytes,
        ]
        + sections
    )
    return body + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")


def _unframe(data: bytes) -> Tuple[Dict[str, Any], List[bytes]]:
    """Validate and split a frame; raises ValueError on any corruption."""
    if len(data) < 14:
        raise ValueError(
            "truncated frame: %d bytes, need at least 14" % len(data)
        )
    if data[:4] != MAGIC:
        raise ValueError("bad magic %r (expected %r)" % (data[:4], MAGIC))
    version = int.from_bytes(data[4:6], "little")
    if version != FORMAT_VERSION:
        raise ValueError(
            "unsupported format version %d (this build reads %d)"
            % (version, FORMAT_VERSION)
        )
    stored_crc = int.from_bytes(data[-4:], "little")
    actual_crc = zlib.crc32(data[:-4]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise ValueError(
            "CRC mismatch: stored 0x%08x, computed 0x%08x (truncated or "
            "corrupt frame)" % (stored_crc, actual_crc)
        )
    header_length = int.from_bytes(data[6:10], "little")
    header_end = 10 + header_length
    if header_end > len(data) - 4:
        raise ValueError("truncated frame: header overruns payload")
    try:
        header = json.loads(data[10:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError("corrupt header: %s" % (exc,))
    lengths = header.get("sections", [])
    sections: List[bytes] = []
    cursor = header_end
    for length in lengths:
        sections.append(data[cursor : cursor + length])
        cursor += length
    if cursor != len(data) - 4:
        raise ValueError(
            "section lengths disagree with payload: header claims %d bytes, "
            "frame carries %d" % (cursor - header_end, len(data) - 4 - header_end)
        )
    return header, sections


# ---------------------------------------------------------------------------
# Canonical sketches.
# ---------------------------------------------------------------------------


def _sketch_header(sketch: CanonicalSketch) -> Dict[str, Any]:
    class_name = type(sketch).__name__
    if class_name not in _SKETCH_CLASSES:
        raise TypeError("unsupported sketch class %r" % (class_name,))
    header: Dict[str, Any] = {
        "class": class_name,
        "depth": sketch.depth,
        "width": sketch.width,
        "seed": sketch.seed,
        "hash_family": sketch.hash_family,
    }
    if hasattr(sketch, "total"):
        header["total"] = float(sketch.total)
    return header


def _sketch_section(sketch: CanonicalSketch) -> bytes:
    return sketch.counters.astype(np.float64).tobytes()


def _restore_sketch(header: Dict[str, Any], section: bytes) -> CanonicalSketch:
    sketch_cls = _SKETCH_CLASSES.get(header["class"])
    if sketch_cls is None:
        raise ValueError("unknown sketch class %r" % (header["class"],))
    depth = int(header["depth"])
    width = int(header["width"])
    expected = depth * width * 8
    if len(section) != expected:
        raise ValueError(
            "truncated or corrupt sketch payload: %d bytes for a %dx%d "
            "float64 grid (expected %d)" % (len(section), depth, width, expected)
        )
    sketch = sketch_cls(
        depth,
        width,
        header["seed"],
        hash_family=header.get("hash_family", "multiply_shift"),
    )
    sketch.counters = (
        np.frombuffer(section, dtype=np.float64).reshape(depth, width).copy()
    )
    if "total" in header and hasattr(sketch, "total"):
        sketch.total = header["total"]
    return sketch


def serialize_sketch(sketch: CanonicalSketch) -> bytes:
    """Serialize a canonical sketch to bytes (config + counters).

    Hash functions are reconstructed from the seed, so only the counter
    grid and the scalar state travel -- the same wire format choice the
    paper's data plane makes (ship counters, rebuild hashes).
    """
    return _frame(_sketch_header(sketch), [_sketch_section(sketch)])


def deserialize_sketch(data: bytes) -> CanonicalSketch:
    """Rebuild a sketch serialized by :func:`serialize_sketch`."""
    header, sections = _unframe(data)
    if header.get("class") in (
        "NitroSketch",
        "UnivMon",
        "NitroUnivMon",
        "SlidingWindowMonitor",
    ):
        raise ValueError(
            "frame holds a %s; use deserialize_monitor" % (header["class"],)
        )
    return _restore_sketch(header, sections[0] if sections else b"")


# ---------------------------------------------------------------------------
# Component state helpers (TopK / controllers / RNGs).
# ---------------------------------------------------------------------------


def _topk_state(topk: Optional[TopK]) -> Optional[Dict[str, Any]]:
    if topk is None:
        return None
    return {
        "k": topk.k,
        # Heap array order *is* behavioral state (lazy invalidation keeps
        # stale entries); preserve it verbatim, plus dict insertion order.
        "heap": [[float(est), int(key)] for est, key in topk._heap],
        "best": [[int(key), float(est)] for key, est in topk._best.items()],
    }


def _restore_topk(state: Optional[Dict[str, Any]]) -> Optional[TopK]:
    if state is None:
        return None
    topk = TopK(int(state["k"]))
    topk._heap = [(est, int(key)) for est, key in state["heap"]]
    topk._best = {int(key): est for key, est in state["best"]}
    return topk


def _generator_state(rng: "np.random.Generator") -> Dict[str, Any]:
    return rng.bit_generator.state


def _restore_generator(state: Dict[str, Any]) -> "np.random.Generator":
    rng = np.random.default_rng()
    rng.bit_generator.state = state
    return rng


def _config_to_dict(config) -> Dict[str, Any]:
    return {
        "probability": config.probability,
        "mode": config.mode.value,
        "epsilon": config.epsilon,
        "delta": config.delta,
        "top_k": config.top_k,
        "convergence_check_period": config.convergence_check_period,
        "adaptation_epoch_seconds": config.adaptation_epoch_seconds,
        "target_update_rate_mpps": config.target_update_rate_mpps,
        "sampling": config.sampling,
        "seed": config.seed,
    }


def _config_from_dict(state: Dict[str, Any]):
    from repro.core.config import NitroConfig

    return NitroConfig(**state)


# ---------------------------------------------------------------------------
# Monitors.
# ---------------------------------------------------------------------------


def serialize_monitor(monitor) -> bytes:
    """Serialize any supported monitor to a CRC-checked frame.

    Supported: registered canonical sketches, :class:`NitroSketch`,
    vanilla :class:`UnivMon`, :class:`NitroUnivMon`, and
    :class:`~repro.control.windows.SlidingWindowMonitor` (every epoch
    sketch in the ring plus the rotation cursor).  The round trip is
    byte-exact: a restored monitor has identical counters, top-k
    contents, controller state and PRNG cursors, so it replays the rest
    of the stream exactly like the original would have.
    """
    from repro.control.windows import SlidingWindowMonitor
    from repro.core.nitro import NitroSketch
    from repro.core.univmon_nitro import NitroUnivMon
    from repro.sketches.univmon import UnivMon

    if isinstance(monitor, CanonicalSketch):
        return serialize_sketch(monitor)
    if isinstance(monitor, SlidingWindowMonitor):
        return _frame(
            _window_header(monitor),
            # Section 0 is a pristine "template" frame (one fresh
            # factory build): restore synthesizes the epoch factory by
            # replaying it, so a restored window rotates without the
            # caller rebinding a factory closure.  Then the completed
            # ring epochs oldest-first, then the in-progress epoch.
            [serialize_monitor(monitor.monitor_factory())]
            + [serialize_monitor(member) for member in monitor._ring]
            + [serialize_monitor(monitor._current)],
        )
    if isinstance(monitor, NitroSketch):
        header: Dict[str, Any] = {
            "class": "NitroSketch",
            "config": _config_to_dict(monitor.config),
            "sketch": _sketch_header(monitor.sketch),
            "pending": monitor._pending,
            "packets_seen": monitor.packets_seen,
            "packets_sampled": monitor.packets_sampled,
            "sampler": monitor.sampler.getstate(),
            "batch_rng": _generator_state(monitor._batch_rng),
            "topk": _topk_state(monitor.topk),
            "linerate": (
                monitor.linerate.getstate() if monitor.linerate is not None else None
            ),
            "correctness": (
                monitor.correctness.getstate()
                if monitor.correctness is not None
                else None
            ),
        }
        return _frame(header, [_sketch_section(monitor.sketch)])
    if isinstance(monitor, NitroUnivMon):
        header = _univmon_header(monitor)
        header["class"] = "NitroUnivMon"
        header["config"] = _config_to_dict(monitor.config)
        header["pending"] = monitor._pending
        header["packets_sampled"] = monitor._packets_sampled
        header["sampler"] = monitor.sampler.getstate()
        header["batch_rng"] = _generator_state(monitor._batch_rng)
        header["linerate"] = (
            monitor.linerate.getstate() if monitor.linerate is not None else None
        )
        header["correctness"] = (
            monitor.correctness.getstate() if monitor.correctness is not None else None
        )
        return _frame(header, _univmon_sections(monitor))
    if isinstance(monitor, UnivMon):
        return _frame(_univmon_header(monitor), _univmon_sections(monitor))
    raise TypeError("unsupported monitor class %r" % (type(monitor).__name__,))


def _window_header(monitor) -> Dict[str, Any]:
    return {
        "class": "SlidingWindowMonitor",
        "window_epochs": monitor.window_epochs,
        "epoch_packets": monitor.epoch_packets,
        "current_count": monitor._current_count,
        "epochs_rotated": monitor.epochs_rotated,
        "ring_counts": [int(count) for count in monitor._ring_counts],
    }


def _restore_window(header: Dict[str, Any], sections: List[bytes]):
    from repro.control.windows import SlidingWindowMonitor

    ring_counts = [int(count) for count in header["ring_counts"]]
    if len(sections) != len(ring_counts) + 2:
        raise ValueError(
            "window frame carries %d sections for %d ring epochs "
            "(expected template + ring + current)"
            % (len(sections), len(ring_counts))
        )
    # The template section is kept as bytes: deserializing it on demand
    # IS the epoch factory, and re-serializing the restored window
    # regenerates the identical template frame (round trips are
    # byte-exact), so checkpoint-of-restore equals the original.
    template = bytes(sections[0])
    window = SlidingWindowMonitor(
        lambda: deserialize_monitor(template),
        int(header["window_epochs"]),
        int(header["epoch_packets"]),
    )
    window._ring.clear()
    window._ring.extend(deserialize_monitor(section) for section in sections[1:-1])
    window._ring_counts.clear()
    window._ring_counts.extend(ring_counts)
    window._current = deserialize_monitor(sections[-1])
    window._current_count = int(header["current_count"])
    window.epochs_rotated = int(header["epochs_rotated"])
    window._merged = None
    return window


def _univmon_header(monitor) -> Dict[str, Any]:
    return {
        "class": "UnivMon",
        "levels": monitor.levels,
        "depth": monitor.depth,
        "k": monitor.k,
        "seed": monitor.seed,
        "widths": [unit.sketch.width for unit in monitor.sketches],
        "total": float(monitor.total),
        "packets_seen": monitor.packets_seen,
        "level_topk": [_topk_state(unit.topk) for unit in monitor.sketches],
    }


def _univmon_sections(monitor) -> List[bytes]:
    return [_sketch_section(unit.sketch) for unit in monitor.sketches]


def _restore_univmon_levels(monitor, header, sections) -> None:
    if len(sections) != monitor.levels:
        raise ValueError(
            "level count mismatch: %d sections for %d levels"
            % (len(sections), monitor.levels)
        )
    for unit, state, section in zip(monitor.sketches, header["level_topk"], sections):
        sketch = unit.sketch
        expected = sketch.depth * sketch.width * 8
        if len(section) != expected:
            raise ValueError(
                "truncated or corrupt level payload: %d bytes for a %dx%d "
                "float64 grid (expected %d)"
                % (len(section), sketch.depth, sketch.width, expected)
            )
        sketch.counters = (
            np.frombuffer(section, dtype=np.float64)
            .reshape(sketch.depth, sketch.width)
            .copy()
        )
        restored = _restore_topk(state)
        if restored is not None:
            unit.topk = restored
    monitor.total = header["total"]
    monitor.packets_seen = int(header["packets_seen"])


def deserialize_monitor(data: bytes):
    """Rebuild any monitor serialized by :func:`serialize_monitor`."""
    from repro.core.nitro import NitroSketch
    from repro.core.univmon_nitro import NitroUnivMon
    from repro.sketches.univmon import UnivMon

    header, sections = _unframe(data)
    class_name = header.get("class")

    if class_name in _SKETCH_CLASSES:
        return _restore_sketch(header, sections[0] if sections else b"")

    if class_name == "SlidingWindowMonitor":
        return _restore_window(header, sections)

    if class_name == "NitroSketch":
        sketch = _restore_sketch(header["sketch"], sections[0] if sections else b"")
        config = _config_from_dict(header["config"])
        monitor = NitroSketch(sketch, config)
        monitor._pending = int(header["pending"])
        monitor.packets_seen = int(header["packets_seen"])
        monitor.packets_sampled = int(header["packets_sampled"])
        monitor.sampler.setstate(header["sampler"])
        monitor._batch_rng = _restore_generator(header["batch_rng"])
        monitor.topk = _restore_topk(header["topk"])
        if header["linerate"] is not None and monitor.linerate is not None:
            monitor.linerate.setstate(header["linerate"])
        if header["correctness"] is not None and monitor.correctness is not None:
            monitor.correctness.setstate(header["correctness"])
        return monitor

    if class_name == "UnivMon":
        monitor = UnivMon(
            levels=int(header["levels"]),
            depth=int(header["depth"]),
            widths=header["widths"],
            k=int(header["k"]),
            seed=int(header["seed"]),
        )
        _restore_univmon_levels(monitor, header, sections)
        return monitor

    if class_name == "NitroUnivMon":
        config = _config_from_dict(header["config"])
        monitor = NitroUnivMon(
            levels=int(header["levels"]),
            depth=int(header["depth"]),
            widths=header["widths"],
            k=int(header["k"]),
            config=config,
        )
        _restore_univmon_levels(monitor, header, sections)
        monitor._pending = int(header["pending"])
        monitor._packets_sampled = int(header["packets_sampled"])
        monitor.sampler.setstate(header["sampler"])
        monitor._batch_rng = _restore_generator(header["batch_rng"])
        if header["linerate"] is not None and monitor.linerate is not None:
            monitor.linerate.setstate(header["linerate"])
        if header["correctness"] is not None and monitor.correctness is not None:
            monitor.correctness.setstate(header["correctness"])
        return monitor

    raise ValueError("unknown monitor class %r" % (class_name,))


# ---------------------------------------------------------------------------
# Epoch hand-off frames (parallel data plane -> control plane).
# ---------------------------------------------------------------------------


def serialize_epoch_frame(meta: Dict[str, Any], monitor=None) -> bytes:
    """Frame one epoch hand-off from a data-plane worker.

    ``meta`` is a JSON-compatible dict of per-epoch bookkeeping (worker
    id, epoch number, packet/timing counters); ``monitor`` optionally
    embeds the worker's full monitor state via
    :func:`serialize_monitor` -- the merge-per-epoch strategy ships its
    sketch this way, the shared-memory strategy ships metadata only.

    The result is a normal NSKW v2 frame: versioned, CRC-checked, and
    rejected with ``ValueError`` on any truncation or corruption, which
    is what makes the mailbox hand-off safe against torn reads and bit
    rot (the embedded monitor frame carries its own CRC too, so damage
    is double-checked).

    Distributed-tracing context rides in ``meta["trace"]`` -- an
    optional JSON block ``{"trace_id", "epoch_span_id", "span_id",
    "spans": [...]}`` written by the parallel workers (see
    :mod:`repro.telemetry.spans`): the per-epoch trace id, the parent
    epoch span's id, the worker's own ingest span id, and the worker's
    finished spans as plain dicts.  The parent imports the spans into
    its :class:`~repro.telemetry.spans.SpanTracer`, reassembling one
    coherent per-epoch trace across process boundaries.  Consumers that
    predate the block ignore it: it is ordinary header JSON.
    """
    header: Dict[str, Any] = {
        "class": "EpochFrame",
        "meta": dict(meta),
        "monitor": monitor is not None,
    }
    sections = [serialize_monitor(monitor)] if monitor is not None else []
    return _frame(header, sections)


def deserialize_epoch_frame(data: bytes) -> Tuple[Dict[str, Any], Any]:
    """Rebuild ``(meta, monitor_or_None)`` from an epoch frame.

    Raises ``ValueError`` on CRC mismatch, truncation, or a frame of the
    wrong class -- a consumer must treat that as a corrupt shard, never
    merge it.
    """
    header, sections = _unframe(data)
    if header.get("class") != "EpochFrame":
        raise ValueError(
            "frame holds a %r, not an EpochFrame" % (header.get("class"),)
        )
    monitor = None
    if header.get("monitor"):
        if not sections:
            raise ValueError("epoch frame claims a monitor but has no section")
        monitor = deserialize_monitor(sections[0])
    return dict(header.get("meta", {})), monitor


# ---------------------------------------------------------------------------
# Control link model.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ControlLink:
    """The management link between data plane and control plane.

    The paper uses 1 GbE (BCM5720); the transfer of an epoch's sketch
    state takes ``bytes * 8 / rate`` seconds of that link, which bounds
    the practical epoch granularity (Section 4.3's 100ms-10s band).
    """

    rate_gbps: float = 1.0
    #: Per-transfer protocol overhead (headers, framing), bytes.
    overhead_bytes: int = 512

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Seconds the link is busy shipping one epoch's sketch state."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        total_bits = (payload_bytes + self.overhead_bytes) * 8
        return total_bits / (self.rate_gbps * 1e9)

    def max_epochs_per_second(self, payload_bytes: int) -> float:
        """Upper bound on epoch frequency the link supports."""
        seconds = self.transfer_seconds(payload_bytes)
        if seconds <= 0:
            return float("inf")
        return 1.0 / seconds


def export_cost(monitor, link: ControlLink = ControlLink()) -> Tuple[int, float]:
    """(payload bytes, link seconds) for exporting a monitor's state.

    Works with anything exposing ``memory_bytes`` -- the control plane
    ships the counter state, which is what that figure approximates.
    """
    payload = monitor.memory_bytes()
    return payload, link.transfer_seconds(payload)
