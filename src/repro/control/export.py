"""Sketch serialization + control-plane transfer model.

The paper's control plane "periodically (at the end of each epoch)
receives sketching data from the data plane module through a 1GbE link"
(Section 6).  This module provides:

* :func:`serialize_sketch` / :func:`deserialize_sketch` -- byte-exact
  round-trip of canonical sketches (and Nitro wrappers / UnivMon, whose
  state is their sketches plus top-k contents);
* :class:`ControlLink` -- the 1 GbE transfer model: how long an epoch's
  sketch export occupies the management link, the quantity that bounds
  how small epochs can get in the paper's deployment.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sketches.base import CanonicalSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch

#: Registry of serializable canonical sketch classes.
_SKETCH_CLASSES = {
    "CountMinSketch": CountMinSketch,
    "CountSketch": CountSketch,
    "KArySketch": KArySketch,
}


def serialize_sketch(sketch: CanonicalSketch) -> bytes:
    """Serialize a canonical sketch to bytes (config + counters).

    Hash functions are reconstructed from the seed, so only the counter
    grid and the scalar state travel -- the same wire format choice the
    paper's data plane makes (ship counters, rebuild hashes).
    """
    class_name = type(sketch).__name__
    if class_name not in _SKETCH_CLASSES:
        raise TypeError("unsupported sketch class %r" % (class_name,))
    header = {
        "class": class_name,
        "depth": sketch.depth,
        "width": sketch.width,
        "seed": sketch.seed,
        "hash_family": sketch.hash_family,
    }
    if isinstance(sketch, KArySketch):
        header["total"] = sketch.total
    buffer = io.BytesIO()
    header_bytes = json.dumps(header).encode("utf-8")
    buffer.write(len(header_bytes).to_bytes(4, "little"))
    buffer.write(header_bytes)
    buffer.write(sketch.counters.astype(np.float64).tobytes())
    return buffer.getvalue()


def deserialize_sketch(data: bytes) -> CanonicalSketch:
    """Rebuild a sketch serialized by :func:`serialize_sketch`."""
    header_length = int.from_bytes(data[:4], "little")
    header = json.loads(data[4 : 4 + header_length].decode("utf-8"))
    sketch_cls = _SKETCH_CLASSES.get(header["class"])
    if sketch_cls is None:
        raise ValueError("unknown sketch class %r" % (header["class"],))
    sketch = sketch_cls(
        header["depth"],
        header["width"],
        header["seed"],
        hash_family=header.get("hash_family", "multiply_shift"),
    )
    counters = np.frombuffer(
        data[4 + header_length :], dtype=np.float64
    ).reshape(header["depth"], header["width"])
    sketch.counters = counters.copy()
    if isinstance(sketch, KArySketch):
        sketch.total = header.get("total", 0.0)
    return sketch


@dataclass(frozen=True)
class ControlLink:
    """The management link between data plane and control plane.

    The paper uses 1 GbE (BCM5720); the transfer of an epoch's sketch
    state takes ``bytes * 8 / rate`` seconds of that link, which bounds
    the practical epoch granularity (Section 4.3's 100ms-10s band).
    """

    rate_gbps: float = 1.0
    #: Per-transfer protocol overhead (headers, framing), bytes.
    overhead_bytes: int = 512

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Seconds the link is busy shipping one epoch's sketch state."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        total_bits = (payload_bytes + self.overhead_bytes) * 8
        return total_bits / (self.rate_gbps * 1e9)

    def max_epochs_per_second(self, payload_bytes: int) -> float:
        """Upper bound on epoch frequency the link supports."""
        seconds = self.transfer_seconds(payload_bytes)
        if seconds <= 0:
            return float("inf")
        return 1.0 / seconds


def export_cost(monitor, link: ControlLink = ControlLink()) -> Tuple[int, float]:
    """(payload bytes, link seconds) for exporting a monitor's state.

    Works with anything exposing ``memory_bytes`` -- the control plane
    ships the counter state, which is what that figure approximates.
    """
    payload = monitor.memory_bytes()
    return payload, link.transfer_seconds(payload)
