"""Epoch-driven control plane.

Runs a monitor over a trace in fixed-size epochs, evaluating a set of
measurement tasks at each epoch boundary -- the periodic
fetch-and-estimate loop of the paper's Control Plane Module (Section 6).
A fresh monitor is built per epoch from a user factory (same seed, so
hash functions are stable across epochs -- required by change
detection, which subtracts same-seed sketches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.control.tasks import MeasurementTask, TaskReport
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.spans import make_span_id
from repro.traffic.traces import Trace


@dataclass
class EpochReport:
    """All task outputs for one epoch."""

    epoch: int
    packets: int
    reports: Dict[str, TaskReport] = field(default_factory=dict)


class ControlPlane:
    """Epoch manager + task dispatcher.

    Parameters
    ----------
    monitor_factory:
        ``factory(epoch_index) -> monitor``.  Called once per epoch; use
        a fixed seed inside for mergeable/subtractable epochs.
    tasks:
        The measurement tasks to run each epoch.
    score:
        When True, exact per-epoch ground truth is computed from the
        trace and every report carries error/recall -- the evaluation
        mode.  Turn off for production-style runs.
    keep_monitors:
        How many recent per-epoch monitors to retain in ``monitors``.
        Change detection subtracts the previous epoch's sketch, so the
        default of 2 is all it needs; long production runs therefore no
        longer accumulate one monitor per epoch.  Pass ``None`` to keep
        every epoch (the old behaviour, for offline analysis).
    telemetry:
        Observability sink; defaults to the free
        :data:`~repro.telemetry.NULL_TELEMETRY`.
    auditor:
        Optional :class:`~repro.telemetry.audit.ShadowAuditor` or
        :class:`~repro.telemetry.audit.GuaranteeMonitor`.  Per epoch it
        is reset, fed the epoch's exact keys, and run against the epoch
        monitor at the boundary -- live per-epoch accuracy auditing with
        no change to the measurement path.
    checkpoints:
        Optional :class:`~repro.control.checkpoint.CheckpointManager`.
        With ``checkpoint_interval > 0`` (epochs) the plane checkpoints
        each Nth epoch's monitor at the epoch boundary, and
        :meth:`run_epochs` restores on start: epoch numbering resumes
        after the newest valid checkpoint's epoch, and the restored
        monitor is re-seeded into ``monitors`` so change detection can
        subtract across the restart.
    anomaly / alerts:
        The alert plane's epoch hook: after tasks and auditing, the
        :class:`~repro.telemetry.anomaly.SketchAnomalyDetectors` (if
        any) observe the epoch's monitor, then the
        :class:`~repro.telemetry.alerts.AlertManager` (if any) runs one
        evaluation round.  Both sequential and parallel epoch loops
        share the hook.  (Plane-evaluated monitors are fresh per epoch,
        so detectors here want ``cumulative=False``.)
    window_epochs:
        With ``window_epochs > 0`` the plane additionally maintains a
        :class:`~repro.control.windows.SlidingWindowMonitor` over the
        last that many completed epochs: each epoch boundary adopts the
        epoch's monitor into the ring (epoch-driven rotation), window
        gauges (``window_*``) are re-exported, window-scoped heavy
        hitters/entropy become queryable on :attr:`window`, and -- when
        a :class:`CheckpointManager` is attached -- the checkpoint
        carries the whole ring instead of one epoch's monitor.
    """

    def __init__(
        self,
        monitor_factory: Callable[[int], object],
        tasks: Sequence[MeasurementTask],
        score: bool = True,
        keep_monitors: Optional[int] = 2,
        telemetry=NULL_TELEMETRY,
        auditor=None,
        checkpoints=None,
        checkpoint_interval: int = 1,
        anomaly=None,
        alerts=None,
        window_epochs: int = 0,
    ) -> None:
        if keep_monitors is not None and keep_monitors < 1:
            raise ValueError("keep_monitors must be >= 1 or None")
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if window_epochs < 0:
            raise ValueError("window_epochs must be >= 0")
        self.monitor_factory = monitor_factory
        self.tasks = list(tasks)
        self.score = score
        self.keep_monitors = keep_monitors
        self.telemetry = telemetry
        self.auditor = auditor
        self.checkpoints = checkpoints
        self.checkpoint_interval = checkpoint_interval
        self.anomaly = anomaly
        self.alerts = alerts
        #: The most recent per-epoch monitors (bounded by ``keep_monitors``).
        self.monitors: List[object] = []
        #: Sliding window over completed epochs (``window_epochs > 0``).
        self.window = None
        if window_epochs > 0:
            from repro.control.windows import SlidingWindowMonitor

            # Epoch index 0 for the merge-scratch factory: factories
            # must use a fixed seed across epochs anyway (change
            # detection subtracts same-seed sketches), so any index
            # yields a merge-compatible instance.
            self.window = SlidingWindowMonitor(
                lambda: monitor_factory(0), window_epochs
            )

    def restore_on_start(self) -> int:
        """Restore the newest valid checkpoint; return the next epoch number.

        Returns 0 (and touches nothing) when checkpointing is disabled
        or no valid checkpoint exists; otherwise re-seeds ``monitors``
        with the restored monitor and returns its epoch + 1 so
        :meth:`run_epochs` resumes numbering where the crashed run left
        off.
        """
        if self.checkpoints is None:
            return 0
        restored = self.checkpoints.restore_latest()
        if restored is None:
            return 0
        from repro.control.windows import SlidingWindowMonitor

        if isinstance(restored.monitor, SlidingWindowMonitor):
            # A windowed plane checkpointed the whole ring: reinstall it
            # and re-seed ``monitors`` with the newest completed epoch
            # so change detection can subtract across the restart.
            self.window = restored.monitor
            members = restored.monitor.window_monitors()[:-1]
            if members:
                self.monitors.append(members[-1])
        else:
            self.monitors.append(restored.monitor)
        next_epoch = int(restored.meta.get("epoch", -1)) + 1
        self.telemetry.event(
            "control.restored", epoch=next_epoch - 1, sequence=restored.sequence
        )
        return next_epoch

    def run_epochs(
        self, trace: Trace, epoch_packets: int
    ) -> List[EpochReport]:
        """Slice the trace into epochs and evaluate all tasks per epoch.

        With a :class:`CheckpointManager` attached, restores on start
        (resuming epoch numbering after the last checkpointed epoch) and
        checkpoints each ``checkpoint_interval``-th epoch's monitor.
        """
        if epoch_packets < 1:
            raise ValueError("epoch_packets must be >= 1")
        reports: List[EpochReport] = []
        telemetry = self.telemetry
        first_epoch = self.restore_on_start()
        for offset, start in enumerate(range(0, len(trace), epoch_packets)):
            epoch = first_epoch + offset
            stop = min(start + epoch_packets, len(trace))
            epoch_trace = trace.slice(start, stop)
            with telemetry.span("control_epoch_seconds"):
                monitor = self.monitor_factory(epoch)
                if hasattr(monitor, "telemetry"):
                    monitor.telemetry = telemetry
                self._ingest(monitor, epoch_trace)
                reports.append(
                    self._evaluate_epoch(monitor, epoch, epoch_trace, offset)
                )
            telemetry.count("control_epochs_total")
            telemetry.event(
                "control.epoch", epoch=epoch, packets=len(epoch_trace)
            )
        return reports

    def run_parallel_epochs(
        self, trace: Trace, epoch_packets: int, engine
    ) -> Tuple[List[EpochReport], object]:
        """Drive the epoch loop off the parallel data plane.

        ``engine`` is a :class:`~repro.parallel.ParallelIngestEngine`
        whose workers ingest the trace's RSS shards in processes; at
        each epoch boundary the engine's merged monitor (the union of
        every worker's shard for that epoch) lands here through the
        ``on_epoch`` hand-off and is evaluated exactly like a
        :meth:`run_epochs` epoch -- same tasks, scoring, auditing and
        checkpointing, with the plane's own ``monitor_factory`` unused.

        The engine must use the ``merge`` strategy with
        ``reset_per_epoch=True``: only then does each delivered monitor
        cover exactly one epoch, matching the fresh-monitor-per-epoch
        contract change detection relies on.  Parallel runs start from
        epoch 0 (no checkpoint-resume: the engine always replays the
        whole trace); checkpoints are still *written* per interval.

        Returns ``(reports, run_result)`` -- the per-epoch task reports
        plus the engine's :class:`~repro.parallel.ParallelRunResult`
        with its measured throughput and restart counts.
        """
        if epoch_packets < 1:
            raise ValueError("epoch_packets must be >= 1")
        if engine.strategy != "merge":
            raise ValueError(
                "run_parallel_epochs needs a merge-strategy engine: the "
                "shared strategy only produces a single end-of-trace monitor"
            )
        if not engine.reset_per_epoch:
            raise ValueError(
                "run_parallel_epochs needs reset_per_epoch=True: each "
                "delivered monitor must cover one epoch, not the whole run"
            )
        if engine.epoch_packets is None:
            engine.epoch_packets = epoch_packets
        elif engine.epoch_packets != epoch_packets:
            raise ValueError(
                "engine.epoch_packets (%r) disagrees with epoch_packets (%d)"
                % (engine.epoch_packets, epoch_packets)
            )
        telemetry = self.telemetry
        reports: List[EpochReport] = []

        def boundary(epoch: int, merged, metas) -> None:
            start = epoch * epoch_packets
            stop = min(start + epoch_packets, len(trace))
            epoch_trace = trace.slice(start, stop)
            # The workers stamped their frames with the epoch's trace
            # context; task-evaluation spans join that trace so the
            # whole ingest -> merge -> evaluate pipeline is one tree.
            trace_ctx = None
            for meta in metas:
                block = meta.get("trace")
                if isinstance(block, dict) and block.get("trace_id"):
                    trace_ctx = (
                        str(block["trace_id"]),
                        block.get("epoch_span_id"),
                    )
                    break
            with telemetry.span("control_epoch_seconds"):
                if hasattr(merged, "telemetry"):
                    merged.telemetry = telemetry
                reports.append(
                    self._evaluate_epoch(
                        merged, epoch, epoch_trace, epoch, trace_ctx=trace_ctx
                    )
                )
            telemetry.count("control_epochs_total")
            telemetry.event(
                "control.epoch",
                epoch=epoch,
                packets=len(epoch_trace),
                parallel=True,
            )

        result = engine.run(trace.keys, on_epoch=boundary)
        return reports, result

    def _evaluate_epoch(
        self,
        monitor,
        epoch: int,
        epoch_trace: Trace,
        offset: int,
        trace_ctx: Optional[Tuple[str, Optional[str]]] = None,
    ) -> EpochReport:
        """Everything that happens at one epoch boundary, post-ingest.

        Shared by the sequential and parallel paths: monitor retention,
        task evaluation (scored against exact epoch truth when enabled),
        shadow auditing, and interval checkpointing.  ``offset`` is the
        epoch's position within *this* run (it differs from ``epoch``
        after a checkpoint restore) and paces the checkpoint interval.
        ``trace_ctx`` -- ``(trace_id, parent_span_id)`` from the data
        plane -- nests per-task evaluation spans under the epoch span.
        """
        telemetry = self.telemetry
        self.monitors.append(monitor)
        if self.keep_monitors is not None and len(self.monitors) > self.keep_monitors:
            del self.monitors[: -self.keep_monitors]
        epoch_report = EpochReport(epoch=epoch, packets=len(epoch_trace))
        truth = epoch_trace.counts() if self.score else None
        for task in self.tasks:
            if trace_ctx is not None:
                trace_id, parent_id = trace_ctx
                task_span = telemetry.start_span(
                    "task.evaluate",
                    trace_id=trace_id,
                    parent_id=parent_id,
                    span_id=make_span_id(trace_id, "task.evaluate", task.name),
                    task=task.name,
                    epoch=epoch,
                )
            else:
                task_span = None
            with telemetry.span("control_task_seconds", task=task.name):
                if task_span is not None:
                    with task_span:
                        report = task.evaluate(monitor, len(epoch_trace))
                        if truth is not None:
                            report = task.score(report, truth)
                else:
                    report = task.evaluate(monitor, len(epoch_trace))
                    if truth is not None:
                        report = task.score(report, truth)
            epoch_report.reports[task.name] = report
            telemetry.event(
                "control.task",
                task=task.name,
                epoch=epoch,
                detected=len(report.detected),
                estimate=report.estimate,
            )
        if self.auditor is not None:
            self._audit_epoch(monitor, epoch_trace)
        if self.anomaly is not None:
            self.anomaly.observe_epoch(monitor, len(epoch_trace))
        if self.alerts is not None:
            self.alerts.evaluate()
        if self.window is not None:
            from repro.control.windows import export_window_metrics

            self.window.adopt_epoch(monitor, len(epoch_trace))
            export_window_metrics(self.window, telemetry)
        if (
            self.checkpoints is not None
            and (offset + 1) % self.checkpoint_interval == 0
        ):
            self.checkpoints.save(
                # A windowed plane checkpoints the whole ring, so a
                # restart recovers the full window, not just one epoch.
                self.window if self.window is not None else monitor,
                meta={"epoch": epoch, "packets": len(epoch_trace)},
            )
            telemetry.gauge("control_checkpoint_age_epochs", 0)
        elif self.checkpoints is not None:
            telemetry.gauge(
                "control_checkpoint_age_epochs",
                (offset + 1) % self.checkpoint_interval,
            )
        return epoch_report

    def evaluate_online_epoch(self, monitor, epoch: int, packets: int) -> EpochReport:
        """Run the task catalogue against a *live* monitor.

        The always-on service closes epochs from wire ingest, where no
        recorded :class:`~repro.traffic.replay.Trace` exists -- tasks
        are evaluated from the sketch and the epoch's packet count
        alone.  Exact-truth scoring and shadow auditing both require the
        full epoch's packets, so a plane configured with either refuses
        online evaluation rather than silently degrading (attach the
        auditor to the ingesting daemon instead; it sees every packet).
        """
        if self.score:
            raise RuntimeError(
                "online epochs carry no exact truth; build the plane with score=False"
            )
        if self.auditor is not None:
            raise RuntimeError(
                "online epochs cannot shadow-audit the epoch trace; "
                "attach the auditor to the ingesting daemon instead"
            )
        if packets < 0:
            raise ValueError("packets must be >= 0, got %d" % packets)
        telemetry = self.telemetry
        epoch_report = EpochReport(epoch=epoch, packets=packets)
        with telemetry.span("control_epoch_seconds"):
            for task in self.tasks:
                with telemetry.span("control_task_seconds", task=task.name):
                    report = task.evaluate(monitor, packets)
                epoch_report.reports[task.name] = report
                telemetry.event(
                    "control.task",
                    task=task.name,
                    epoch=epoch,
                    detected=len(report.detected),
                    estimate=report.estimate,
                )
        telemetry.count("control_epochs_total")
        telemetry.event("control.epoch", epoch=epoch, packets=packets)
        return epoch_report

    def _audit_epoch(self, monitor, epoch_trace: Trace) -> None:
        """Shadow-audit one epoch's monitor against exact epoch truth."""
        auditor = self.auditor
        auditor.reset()
        if hasattr(auditor, "check"):  # GuaranteeMonitor: rebind + check
            auditor.monitor = monitor
            auditor.observe_batch(epoch_trace.keys)
            auditor.check()
        else:  # bare ShadowAuditor
            auditor.observe_batch(epoch_trace.keys)
            auditor.audit(monitor)

    @staticmethod
    def _ingest(monitor, trace: Trace) -> None:
        if hasattr(monitor, "update_batch"):
            monitor.update_batch(trace.keys)
            return
        update = monitor.update
        for key in trace.keys.tolist():
            update(key)


class KAryChangeMonitor:
    """Adapter giving a (Nitro-)K-ary sketch the change-detection surface.

    K-ary sketches are linear, so change detection subtracts the
    previous epoch's sketch and queries the difference (paper ref [51]).
    Candidate heavy changers come from the top-k key stores of both
    epochs -- the same heavy-key bookkeeping the paper's Bottleneck 3
    describes.
    """

    def __init__(self, nitro_kary_monitor) -> None:
        self.inner = nitro_kary_monitor

    @property
    def ops(self):
        return self.inner.ops

    @ops.setter
    def ops(self, sink) -> None:
        self.inner.ops = sink

    def update(self, key: int, weight: float = 1.0, timestamp: Optional[float] = None) -> None:
        self.inner.update(key, weight, timestamp=timestamp)

    def update_batch(self, keys, weights=None, duration_seconds=None) -> None:
        try:
            self.inner.update_batch(keys, weights, duration_seconds=duration_seconds)
        except TypeError:
            self.inner.update_batch(keys, weights)

    def query(self, key: int) -> float:
        return self.inner.query(key)

    def heavy_hitters(self, threshold: float):
        return self.inner.heavy_hitters(threshold)

    def change_detection(
        self, previous: "KAryChangeMonitor", threshold: float
    ) -> List[Tuple[int, float]]:
        """Heavy changers vs the previous epoch's monitor."""
        difference = self.inner.sketch.difference(previous.inner.sketch)
        candidates = set()
        if self.inner.topk is not None:
            candidates |= set(self.inner.topk.keys())
        if previous.inner.topk is not None:
            candidates |= set(previous.inner.topk.keys())
        changes = []
        for key in candidates:
            delta = abs(difference.query(key))
            if delta > threshold:
                changes.append((key, delta))
        changes.sort(key=lambda item: (-item[1], item[0]))
        return changes

    def memory_bytes(self) -> int:
        return self.inner.memory_bytes()

    def reset(self) -> None:
        self.inner.reset()
