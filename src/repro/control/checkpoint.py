"""Crash-safe checkpointing of monitor state.

A daemon crash between epochs loses every counter accumulated since the
last export -- the paper's deployment tolerates that because epochs are
100ms-10s, but *Distributed Recoverable Sketches* (Cohen, Friedman,
Shahout) makes the case that recoverability should be a first-class
sketch property.  :class:`CheckpointManager` provides it on top of the
versioned wire format of :mod:`repro.control.export`:

* **atomic writes** -- each checkpoint is written to a temp file in the
  same directory, fsynced, then ``os.replace``d into place, so a crash
  mid-write can never clobber the previous good checkpoint;
* **rotation** -- the newest ``keep`` checkpoints are retained, bounding
  disk usage while keeping fallbacks for corrupt/truncated files;
* **restore-latest with fallback** -- restoring walks checkpoints newest
  first and skips any file whose CRC (or payload) fails validation, so a
  torn or corrupted write degrades to the previous rotation instead of
  an unrecoverable daemon.

Checkpoint files wrap the monitor frame in an outer frame carrying a
JSON ``meta`` dict (epoch number, packets offered, ...) so recovery can
resume epoch numbering and audit the surviving mass.

Any serializable monitor round-trips, including a whole
:class:`~repro.control.windows.SlidingWindowMonitor` ring -- the window
frame carries every epoch sketch plus the in-progress epoch and its
packet counts, so a windowed daemon restored mid-epoch resumes
byte-exactly (see docs/WINDOWS.md).
"""

from __future__ import annotations

import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.control.export import (
    _frame,
    _unframe,
    deserialize_monitor,
    serialize_monitor,
)
from repro.telemetry import NULL_TELEMETRY

_FILE_PATTERN = re.compile(r"^(?P<prefix>.+)-(?P<sequence>\d{8})\.nsk$")


@dataclass
class Checkpoint:
    """One restored (or just-written) checkpoint."""

    sequence: int
    path: str
    meta: Dict[str, Any] = field(default_factory=dict)
    #: The restored monitor (populated by restore paths, ``None`` after save).
    monitor: Any = None


class CheckpointManager:
    """Atomic, rotated, CRC-validated checkpoints for one monitor.

    Parameters
    ----------
    directory:
        Where checkpoint files live (created if missing).
    prefix:
        Filename prefix; files are ``{prefix}-{sequence:08d}.nsk``.
    keep:
        How many rotations to retain (>= 1).  Older files are deleted
        after each successful save.
    """

    def __init__(
        self,
        directory: str,
        prefix: str = "checkpoint",
        keep: int = 3,
        telemetry=NULL_TELEMETRY,
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1, got %d" % keep)
        if "-" in prefix or "/" in prefix:
            raise ValueError("prefix must not contain '-' or '/', got %r" % (prefix,))
        self.directory = directory
        self.prefix = prefix
        self.keep = keep
        self.telemetry = telemetry
        os.makedirs(directory, exist_ok=True)

    # -- paths ----------------------------------------------------------------

    def _path(self, sequence: int) -> str:
        return os.path.join(self.directory, "%s-%08d.nsk" % (self.prefix, sequence))

    def checkpoints(self) -> List[Tuple[int, str]]:
        """``(sequence, path)`` pairs on disk, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            match = _FILE_PATTERN.match(name)
            if match and match.group("prefix") == self.prefix:
                found.append(
                    (int(match.group("sequence")), os.path.join(self.directory, name))
                )
        found.sort()
        return found

    def latest_sequence(self) -> Optional[int]:
        """The newest on-disk sequence number (None when empty)."""
        existing = self.checkpoints()
        return existing[-1][0] if existing else None

    # -- save -----------------------------------------------------------------

    def save(
        self, monitor, meta: Optional[Dict[str, Any]] = None
    ) -> Checkpoint:
        """Atomically write the next checkpoint and rotate old ones."""
        latest = self.latest_sequence()
        sequence = 0 if latest is None else latest + 1
        blob = _frame(
            {"class": "Checkpoint", "meta": dict(meta or {}), "sequence": sequence},
            [serialize_monitor(monitor)],
        )
        path = self._path(sequence)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".%s-" % self.prefix, suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self.telemetry.count("checkpoint_writes_total")
        self.telemetry.count("checkpoint_bytes_total", len(blob))
        self.telemetry.gauge("checkpoint_last_sequence", float(sequence))
        self.telemetry.gauge("checkpoint_size_bytes", float(len(blob)))
        self._rotate()
        return Checkpoint(sequence=sequence, path=path, meta=dict(meta or {}))

    def _rotate(self) -> None:
        existing = self.checkpoints()
        for sequence, path in existing[: max(len(existing) - self.keep, 0)]:
            os.unlink(path)

    # -- restore --------------------------------------------------------------

    def load(self, path: str) -> Checkpoint:
        """Load one checkpoint file; raises ValueError if invalid."""
        with open(path, "rb") as handle:
            data = handle.read()
        header, sections = _unframe(data)
        if header.get("class") != "Checkpoint":
            raise ValueError(
                "not a checkpoint frame (class %r)" % (header.get("class"),)
            )
        monitor = deserialize_monitor(sections[0])
        return Checkpoint(
            sequence=int(header.get("sequence", -1)),
            path=path,
            meta=header.get("meta", {}),
            monitor=monitor,
        )

    def restore_latest(self) -> Optional[Checkpoint]:
        """Restore the newest valid checkpoint, falling back past corrupt ones.

        Any file that fails CRC/format validation is skipped (counted in
        ``checkpoint_restore_failures_total``) and the next-older rotation
        is tried -- the contract the fault-injection harness exercises.
        Returns ``None`` when no valid checkpoint exists.
        """
        for sequence, path in reversed(self.checkpoints()):
            try:
                checkpoint = self.load(path)
            except (ValueError, OSError) as exc:
                self.telemetry.count("checkpoint_restore_failures_total")
                self.telemetry.event(
                    "checkpoint.invalid", path=path, error=str(exc)
                )
                continue
            self.telemetry.count("checkpoint_restores_total")
            self.telemetry.event(
                "checkpoint.restored", path=path, sequence=checkpoint.sequence
            )
            return checkpoint
        return None
