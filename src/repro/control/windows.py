"""Sliding-window monitoring over epoch rings.

The paper's task list includes windowed variants (ref [6], a sliding
Bloom filter giving counting/distinct/entropy over windows).  Sketch
linearity gives a simple, exact-at-epoch-granularity construction: keep
a ring of the last ``window`` epoch sketches; the window view is their
merge.  This is the standard "basic window" technique -- memory is
``window`` sketches, and answers cover the most recent
``window * epoch_packets`` packets with epoch-granularity staleness.

Works with any mergeable monitor (canonical sketches and NitroSketch
wrappers); the factory must produce same-seed instances.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Tuple


class SlidingWindowMonitor:
    """Ring of epoch sketches answering queries over the last W epochs.

    Parameters
    ----------
    monitor_factory:
        Builds one epoch monitor; must produce merge-compatible
        instances (same seed/shape).
    window_epochs:
        Number of epochs the window spans.
    epoch_packets:
        Packets per epoch (the rotation granularity).
    """

    def __init__(
        self,
        monitor_factory: Callable[[], object],
        window_epochs: int,
        epoch_packets: int,
    ) -> None:
        if window_epochs < 1:
            raise ValueError("window_epochs must be >= 1")
        if epoch_packets < 1:
            raise ValueError("epoch_packets must be >= 1")
        self.monitor_factory = monitor_factory
        self.window_epochs = window_epochs
        self.epoch_packets = epoch_packets
        # Completed epochs inside the window (the in-progress epoch is
        # held separately), so the window is ring + current.
        self._ring: Deque = deque(maxlen=max(window_epochs - 1, 1) if window_epochs > 1 else 0)
        self._current = monitor_factory()
        self._current_count = 0
        self.epochs_rotated = 0

    def update(self, key: int, weight: float = 1.0) -> None:
        """Ingest one packet, rotating the ring at epoch boundaries."""
        self._current.update(key, weight)
        self._current_count += 1
        if self._current_count >= self.epoch_packets:
            self._rotate()

    def update_batch(self, keys) -> None:
        """Batched ingest honouring epoch boundaries."""
        import numpy as np

        keys = np.asarray(keys)
        start = 0
        while start < len(keys):
            room = self.epoch_packets - self._current_count
            chunk = keys[start : start + room]
            self._current.update_batch(chunk)
            self._current_count += len(chunk)
            start += len(chunk)
            if self._current_count >= self.epoch_packets:
                self._rotate()

    def _rotate(self) -> None:
        self._ring.append(self._current)
        self._current = self.monitor_factory()
        self._current_count = 0
        self.epochs_rotated += 1

    # -- queries ------------------------------------------------------------

    def window_monitors(self) -> List:
        """The monitors currently inside the window (oldest first),
        including the in-progress epoch."""
        return list(self._ring) + [self._current]

    def query(self, key: int) -> float:
        """Estimated count of ``key`` over the window."""
        return sum(monitor.query(key) for monitor in self.window_monitors())

    def merged(self):
        """A merged copy of the window (for heavy-hitter extraction etc.)."""
        monitors = self.window_monitors()
        merged = self.monitor_factory()
        for monitor in monitors:
            merged.merge(monitor)
        return merged

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Window heavy hitters from per-epoch candidates + window counts."""
        candidates = set()
        for monitor in self.window_monitors():
            if hasattr(monitor, "topk") and monitor.topk is not None:
                candidates.update(monitor.topk.keys())
        hitters = [
            (key, self.query(key)) for key in candidates if self.query(key) > threshold
        ]
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def window_packets(self) -> int:
        """Packets currently covered by the window."""
        full_epochs = min(len(self._ring), self.window_epochs - 1)
        return full_epochs * self.epoch_packets + self._current_count

    def memory_bytes(self) -> int:
        return sum(
            monitor.memory_bytes() for monitor in list(self._ring) + [self._current]
        )
