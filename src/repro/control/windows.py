"""Sliding-window monitoring over epoch rings.

The paper's task list includes windowed variants (ref [6], a sliding
Bloom filter giving counting/distinct/entropy over windows).  Sketch
linearity gives a simple, exact-at-epoch-granularity construction: keep
a ring of the last ``W`` epoch sketches; the window view is their
merge.  This is the standard "basic window" technique -- memory is
``W`` sketches, and answers cover the most recent ``W`` epochs with
epoch-granularity staleness (docs/WINDOWS.md).

Two driving modes share one ring:

* **packet-driven** -- :meth:`SlidingWindowMonitor.update_batch`
  rotates automatically every ``epoch_packets`` packets (or an owner
  such as :class:`~repro.switchsim.daemon.MeasurementDaemon` calls
  :meth:`~SlidingWindowMonitor.rotate` on its own epoch boundaries when
  ``epoch_packets == 0``).  The window is the ``window_epochs - 1``
  most recent completed epochs plus the in-progress one.
* **epoch-driven** -- a control plane that already builds one monitor
  per epoch pushes each completed monitor with
  :meth:`~SlidingWindowMonitor.adopt_epoch`; the ring then holds up to
  ``window_epochs`` completed epochs and the in-progress slot stays
  empty.

Works with any mergeable monitor (canonical sketches and NitroSketch
wrappers); the factory must produce same-seed instances.  The whole
ring -- every epoch sketch plus the rotation cursor -- round-trips
byte-exactly through :func:`repro.control.export.serialize_monitor`,
so :class:`~repro.control.checkpoint.CheckpointManager` checkpoints
windows like any other monitor.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np


def _query_batch_of(monitor, keys: "np.ndarray") -> "np.ndarray":
    """Batched point queries against whatever estimator ``monitor`` has."""
    fn = getattr(monitor, "query_batch", None)
    if fn is None:
        fn = getattr(getattr(monitor, "sketch", None), "query_batch", None)
    if fn is not None:
        return np.asarray(fn(np.asarray(keys)), dtype=np.float64)
    return np.array([monitor.query(int(key)) for key in keys], dtype=np.float64)


class SlidingWindowMonitor:
    """Ring of epoch sketches answering queries over the last W epochs.

    Parameters
    ----------
    monitor_factory:
        Builds one epoch monitor; must produce merge-compatible
        instances (same seed/shape).
    window_epochs:
        Number of epochs the window spans (including the in-progress
        epoch in packet-driven mode).
    epoch_packets:
        Packets per epoch (the rotation granularity).  ``0`` disables
        automatic rotation: the owner calls :meth:`rotate` (or
        :meth:`adopt_epoch`) on its own epoch boundaries.
    """

    def __init__(
        self,
        monitor_factory: Callable[[], object],
        window_epochs: int,
        epoch_packets: int = 0,
    ) -> None:
        if window_epochs < 1:
            raise ValueError("window_epochs must be >= 1")
        if epoch_packets < 0:
            raise ValueError("epoch_packets must be >= 0 (0 = manual rotation)")
        self.monitor_factory = monitor_factory
        self.window_epochs = int(window_epochs)
        self.epoch_packets = int(epoch_packets)
        # Completed epochs inside the window (the in-progress epoch is
        # held separately), so the window is ring + current.  Trimming
        # is manual: rotate() keeps window_epochs - 1 completed epochs
        # (the in-progress one fills the last slot), adopt_epoch()
        # keeps window_epochs (its in-progress slot stays empty).
        self._ring: Deque = deque()
        self._ring_counts: Deque[int] = deque()
        self._current = monitor_factory()
        self._current_count = 0
        self.epochs_rotated = 0
        #: Cached merge of ring + current; rebuilt lazily after any
        #: ingest or rotation invalidates it.
        self._merged = None
        # Instrumentation handed down by an owner (the daemon): applied
        # to every ring member and to each newly-opened epoch.
        self._ops = None
        self._telemetry = None
        self._profiler = None

    @classmethod
    def from_template(
        cls,
        monitor,
        window_epochs: int,
        epoch_packets: int = 0,
    ) -> "SlidingWindowMonitor":
        """Wrap a pristine monitor instance as the window's first epoch.

        The factory for later epochs replays ``monitor``'s serialized
        state, so every epoch starts bit-identical to the template --
        the caller needs no factory closure.  ``monitor`` must be
        unused: any counts it already holds would leak into every
        future epoch.
        """
        from repro.control.export import deserialize_monitor, serialize_monitor

        template = serialize_monitor(monitor)
        window = cls(
            lambda: deserialize_monitor(template), window_epochs, epoch_packets
        )
        window._current = monitor
        return window

    # -- instrumentation hand-down ------------------------------------------

    def _wire(self, monitor) -> None:
        """Apply the owner's instrumentation to one epoch monitor."""
        if self._ops is not None and hasattr(monitor, "ops"):
            monitor.ops = self._ops
        if self._telemetry is not None and hasattr(monitor, "telemetry"):
            monitor.telemetry = self._telemetry
        if self._profiler is not None and hasattr(monitor, "profiler"):
            monitor.profiler = self._profiler

    @property
    def ops(self):
        """Shared op counter, propagated to every epoch monitor."""
        return self._ops

    @ops.setter
    def ops(self, value) -> None:
        self._ops = value
        for monitor in self.window_monitors():
            if hasattr(monitor, "ops"):
                monitor.ops = value

    @property
    def telemetry(self):
        """Shared telemetry sink, propagated to every epoch monitor."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, value) -> None:
        self._telemetry = value
        for monitor in self.window_monitors():
            if hasattr(monitor, "telemetry"):
                monitor.telemetry = value

    @property
    def profiler(self):
        """Shared stage profiler, propagated to every epoch monitor."""
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self._profiler = value
        for monitor in self.window_monitors():
            if hasattr(monitor, "profiler"):
                monitor.profiler = value

    # -- ingest -------------------------------------------------------------

    def update(self, key: int, weight: float = 1.0) -> None:
        """Ingest one packet, rotating the ring at epoch boundaries."""
        self._current.update(key, weight)
        self._current_count += 1
        self._merged = None
        if self.epoch_packets and self._current_count >= self.epoch_packets:
            self.rotate()

    def update_batch(self, keys) -> None:
        """Batched ingest honouring epoch boundaries.

        The common case -- the whole batch fits inside the current
        epoch -- is one kernel call with no slicing; only batches that
        cross an epoch boundary pay the split loop.
        """
        keys = np.asarray(keys)
        total = len(keys)
        if total == 0:
            return
        self._merged = None
        if (
            self.epoch_packets == 0
            or self._current_count + total < self.epoch_packets
        ):
            self._current.update_batch(keys)
            self._current_count += total
            return
        start = 0
        while start < total:
            room = self.epoch_packets - self._current_count
            stop = min(start + room, total)
            self._current.update_batch(keys[start:stop])
            self._current_count += stop - start
            start = stop
            if self._current_count >= self.epoch_packets:
                self.rotate()

    def rotate(self) -> None:
        """Close the in-progress epoch and open a fresh one.

        The evicted epoch (if the ring is full) is recycled via
        ``reset()`` when the monitor supports it -- reset-equals-fresh
        is part of the monitor contract (verified by ``selfcheck``), so
        recycling avoids a factory rebuild per epoch without changing
        behaviour.
        """
        self._ring.append(self._current)
        self._ring_counts.append(self._current_count)
        evicted = None
        while len(self._ring) > self.window_epochs - 1:
            evicted = self._ring.popleft()
            self._ring_counts.popleft()
        if evicted is not None and hasattr(evicted, "reset"):
            evicted.reset()
            self._current = evicted
        else:
            self._current = self.monitor_factory()
            self._wire(self._current)
        self._current_count = 0
        self.epochs_rotated += 1
        self._merged = None

    def adopt_epoch(self, monitor, packets: int) -> None:
        """Push an externally-built completed epoch monitor into the ring.

        Epoch-driven mode for owners (the control plane) that already
        build one monitor per epoch.  The in-progress slot must be
        empty -- the two ingest modes don't mix mid-epoch.
        """
        if self._current_count:
            raise ValueError(
                "adopt_epoch with %d packets in the in-progress epoch; "
                "rotate() first or don't mix ingest modes"
                % (self._current_count,)
            )
        self._ring.append(monitor)
        self._ring_counts.append(int(packets))
        while len(self._ring) > self.window_epochs:
            self._ring.popleft()
            self._ring_counts.popleft()
        self.epochs_rotated += 1
        self._merged = None

    # -- queries ------------------------------------------------------------

    def window_monitors(self) -> List:
        """The monitors currently inside the window (oldest first),
        including the in-progress epoch."""
        return list(self._ring) + [self._current]

    def current_monitor(self):
        """The in-progress epoch's monitor (one epoch of traffic)."""
        return self._current

    def merged(self):
        """The merged window view (ring + current), cached.

        Rebuilt lazily after ingest or rotation invalidates it; repeat
        queries between updates reuse the same merge.  Treat the result
        as read-only -- mutate a copy, or call :meth:`invalidate` after
        deliberate surgery (the chaos scenarios do).
        """
        if self._merged is None:
            merged = self.monitor_factory()
            for monitor in self._ring:
                merged.merge(monitor)
            merged.merge(self._current)
            self._merged = merged
        return self._merged

    def invalidate(self) -> None:
        """Drop the cached merged view (after external mutation)."""
        self._merged = None

    def query(self, key: int) -> float:
        """Estimated count of ``key`` over the window."""
        return float(self.merged().query(key))

    def query_batch(self, keys) -> "np.ndarray":
        """Batched window estimates (one fused pass over the merge)."""
        return _query_batch_of(self.merged(), np.asarray(keys))

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Window heavy hitters from per-epoch candidates + window counts.

        Each candidate's window estimate is computed exactly once, in
        one batched query against the cached merged view.
        """
        candidates: set = set()
        for monitor in self.window_monitors():
            topk = getattr(monitor, "topk", None)
            if topk is not None:
                candidates.update(topk.keys())
        if not candidates:
            return []
        ordered = sorted(candidates)
        estimates = self.query_batch(np.asarray(ordered, dtype=np.uint64))
        hitters = [
            (key, float(est))
            for key, est in zip(ordered, estimates.tolist())
            if est > threshold
        ]
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def window_packets(self) -> int:
        """Packets currently covered by the window (exact, per-epoch)."""
        return sum(self._ring_counts) + self._current_count

    @property
    def packets_seen(self) -> int:
        """Aggregate packets offered to the window's monitors."""
        return sum(
            int(getattr(monitor, "packets_seen", 0))
            for monitor in self.window_monitors()
        )

    @property
    def packets_sampled(self) -> Optional[int]:
        """Aggregate sampled packets, or None for non-sampling monitors."""
        values = [
            getattr(monitor, "packets_sampled", None)
            for monitor in self.window_monitors()
        ]
        if any(value is None for value in values):
            return None
        return sum(int(value) for value in values)

    def memory_bytes(self) -> int:
        return sum(monitor.memory_bytes() for monitor in self.window_monitors())

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Forget everything: empty ring, fresh in-progress epoch."""
        self._ring.clear()
        self._ring_counts.clear()
        self._current = self.monitor_factory()
        self._wire(self._current)
        self._current_count = 0
        self.epochs_rotated = 0
        self._merged = None

    def check_invariants(self) -> List[str]:
        """Ring coherence plus every member monitor's own invariants."""
        violations: List[str] = []
        if len(self._ring) != len(self._ring_counts):
            violations.append(
                "window: ring holds %d monitors but %d packet counts"
                % (len(self._ring), len(self._ring_counts))
            )
        if len(self._ring) > self.window_epochs:
            violations.append(
                "window: ring holds %d epochs, window spans %d"
                % (len(self._ring), self.window_epochs)
            )
        if self._current_count < 0:
            violations.append(
                "window: negative in-progress packet count %d"
                % (self._current_count,)
            )
        if self.epoch_packets and self._current_count >= self.epoch_packets:
            violations.append(
                "window: in-progress epoch holds %d packets past the %d "
                "rotation boundary" % (self._current_count, self.epoch_packets)
            )
        if any(count < 0 for count in self._ring_counts):
            violations.append("window: negative ring packet count")
        for index, monitor in enumerate(self.window_monitors()):
            check = getattr(monitor, "check_invariants", None)
            if check is None:
                continue
            for violation in check():
                violations.append("window[%d]: %s" % (index, violation))
        return violations


def export_window_metrics(window, telemetry, heavy_share: float = 0.01) -> None:
    """Publish window-scoped gauges into a telemetry registry.

    Exposes the window's span, packet coverage, memory, heavy-hitter
    count and entropy as ``window_*`` gauges so ``nitrosketch top``,
    ``/metrics`` and ``/snapshot`` can show window-scoped (not
    cumulative) traffic structure.  Cheap enough to run once per epoch
    boundary; never on the per-batch hot path.
    """
    from repro.telemetry.anomaly import entropy_from_estimates

    packets = window.window_packets()
    telemetry.gauge("window_epochs_spanned", float(len(window.window_monitors())))
    telemetry.gauge("window_epochs_rotated", float(window.epochs_rotated))
    telemetry.gauge("window_packets", float(packets))
    telemetry.gauge("window_memory_bytes", float(window.memory_bytes()))
    hitters = window.heavy_hitters(heavy_share * packets) if packets else []
    telemetry.gauge("window_heavy_hitters", float(len(hitters)))
    telemetry.gauge(
        "window_entropy_bits",
        entropy_from_estimates(dict(hitters), float(packets)) if packets else 0.0,
    )
