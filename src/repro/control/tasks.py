"""Measurement-task definitions (paper Section 2's task taxonomy).

Each task knows how to pull its statistic out of a monitor at the end
of an epoch and, given ground truth, how to score itself with the
paper's metrics (relative error for scalars, mean relative error and
recall for heavy-flow sets).

Tasks are monitor-agnostic: they duck-type against the query surface
(``heavy_hitters``, ``entropy_estimate``, ``distinct_estimate``,
``change_detection`` / ``difference``) so the same task runs against
UnivMon, Nitro-wrapped sketches, ElasticSketch, NetFlow, etc.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.metrics.accuracy import (
    change_truth,
    empirical_entropy,
    heavy_hitter_truth,
    mean_relative_error,
    recall,
    relative_error,
)
from repro.telemetry import NULL_TELEMETRY


@dataclass
class TaskReport:
    """One task's output for one epoch."""

    task: str
    #: Scalar estimate (entropy, distinct) or None for set-valued tasks.
    estimate: Optional[float] = None
    #: Detected flows (heavy hitters / heavy changers) with estimates.
    detected: Dict[int, float] = field(default_factory=dict)
    #: Scores filled in when ground truth was supplied.
    error: Optional[float] = None
    recall: Optional[float] = None


class MeasurementTask(abc.ABC):
    """A user-defined statistic computed each epoch."""

    name: str = "task"
    #: Observability sink; a class-level no-op unless a caller (usually
    #: the control plane or CLI) attaches a real ``Telemetry``.
    telemetry = NULL_TELEMETRY

    @abc.abstractmethod
    def evaluate(self, monitor, epoch_packets: int) -> TaskReport:
        """Extract the statistic from ``monitor`` for a finished epoch."""

    def score(self, report: TaskReport, truth_counts: Mapping[int, int]) -> TaskReport:
        """Fill in error/recall given the epoch's exact counts."""
        return report


class HeavyHitterTask(MeasurementTask):
    """Flows above ``threshold_fraction`` of epoch traffic (paper: 0.05%)."""

    name = "heavy_hitters"

    def __init__(self, threshold_fraction: float = 0.0005) -> None:
        if not 0 < threshold_fraction < 1:
            raise ValueError("threshold_fraction must be in (0, 1)")
        self.threshold_fraction = threshold_fraction

    def evaluate(self, monitor, epoch_packets: int) -> TaskReport:
        threshold = self.threshold_fraction * epoch_packets
        detected = dict(monitor.heavy_hitters(threshold))
        self.telemetry.gauge(
            "control_task_detected_flows", len(detected), task=self.name
        )
        return TaskReport(task=self.name, detected=detected)

    def score(self, report: TaskReport, truth_counts: Mapping[int, int]) -> TaskReport:
        truth = heavy_hitter_truth(truth_counts, self.threshold_fraction)
        report.error = mean_relative_error(report.detected, truth_counts)
        report.recall = recall(set(report.detected), truth)
        return report


class ChangeDetectionTask(MeasurementTask):
    """Flows whose change across epochs exceeds a fraction of total change.

    Needs a monitor exposing either ``change_detection(previous,
    threshold)`` (UnivMon) or ``difference(previous)`` (K-ary); the task
    keeps the previous epoch's monitor snapshot.
    """

    name = "change_detection"

    def __init__(self, threshold_fraction: float = 0.0005) -> None:
        self.threshold_fraction = threshold_fraction
        self._previous_monitor = None
        self._previous_counts: Optional[Dict[int, int]] = None

    def evaluate(self, monitor, epoch_packets: int) -> TaskReport:
        report = TaskReport(task=self.name)
        if self._previous_monitor is not None:
            threshold = self.threshold_fraction * epoch_packets
            if hasattr(monitor, "change_detection"):
                changes = monitor.change_detection(self._previous_monitor, threshold)
                report.detected = dict(changes)
            elif hasattr(monitor, "difference"):
                diff = monitor.difference(self._previous_monitor)
                report.detected = {}  # K-ary needs candidate keys; see KAryChangeDetector
            self.telemetry.gauge(
                "control_task_detected_flows", len(report.detected), task=self.name
            )
        self._previous_monitor = monitor
        return report

    def score(self, report: TaskReport, truth_counts: Mapping[int, int]) -> TaskReport:
        if self._previous_counts is not None and report.detected:
            truth = change_truth(
                self._previous_counts, dict(truth_counts), self.threshold_fraction
            )
            report.recall = recall(set(report.detected), truth)
        self._previous_counts = dict(truth_counts)
        return report


class EntropyTask(MeasurementTask):
    """Shannon entropy of the flow-size distribution."""

    name = "entropy"

    def evaluate(self, monitor, epoch_packets: int) -> TaskReport:
        return TaskReport(task=self.name, estimate=monitor.entropy_estimate())

    def score(self, report: TaskReport, truth_counts: Mapping[int, int]) -> TaskReport:
        truth = empirical_entropy(truth_counts)
        if report.estimate is not None:
            report.error = relative_error(report.estimate, truth)
        return report


class DistinctFlowsTask(MeasurementTask):
    """Number of distinct flows (cardinality / F0)."""

    name = "distinct_flows"

    def evaluate(self, monitor, epoch_packets: int) -> TaskReport:
        return TaskReport(task=self.name, estimate=monitor.distinct_estimate())

    def score(self, report: TaskReport, truth_counts: Mapping[int, int]) -> TaskReport:
        truth = len(truth_counts)
        if report.estimate is not None:
            report.error = relative_error(report.estimate, truth)
        return report
