"""Deterministic pseudo-random number generators.

The NitroSketch data plane must draw geometric variates cheaply and
reproducibly (paper Section 4.2, Idea B).  The C implementation uses a
xorshift-style generator; we mirror that with two small, well-known
generators:

* :class:`SplitMix64` -- used to derive independent seeds (it is the
  recommended seeding generator for the xorshift family).
* :class:`XorShift64Star` -- the workhorse generator for per-packet
  sampling decisions.

Both are implemented with plain integer arithmetic masked to 64 bits so
results are identical across platforms and Python versions.
"""

from __future__ import annotations

from typing import List

import numpy as np

MASK64 = (1 << 64) - 1
#: Scale factor mapping a 64-bit integer into [0, 1).
_INV_2_64 = 1.0 / float(1 << 64)


class SplitMix64:
    """SplitMix64 generator (Steele, Lea & Flood 2014).

    A tiny, statistically solid generator whose main role here is turning
    one user seed into arbitrarily many independent 64-bit seeds for other
    generators and hash families.
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit output."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
        return z ^ (z >> 31)

    def next_nonzero_u64(self) -> int:
        """Return the next output, skipping zero (xorshift seeds must be nonzero)."""
        value = self.next_u64()
        while value == 0:
            value = self.next_u64()
        return value


_XS_MULTIPLIER = 0x2545F4914F6CDD1D


def _xorshift_step_batch(states: "np.ndarray") -> "np.ndarray":
    """One xorshift64 state transition applied elementwise (uint64 array)."""
    states = states ^ (states >> np.uint64(12))
    states = states ^ (states << np.uint64(25))
    states = states ^ (states >> np.uint64(27))
    return states


#: Lazily built columns of the transition matrices ``T^(2**m)``:
#: ``_MATRIX_POWERS[m][j] == T^(2**m)(e_j)``.  The xorshift64 transition
#: is linear over GF(2), so any power of it is a 64x64 bit matrix whose
#: columns fit in one uint64 each.  Seed-independent, computed once.
_MATRIX_POWERS: List["np.ndarray"] = []


def _matrix_apply(columns: "np.ndarray", vectors: "np.ndarray") -> "np.ndarray":
    """GF(2) matrix-vector product for a batch: ``M @ v`` per element.

    ``columns[j]`` is column ``j`` of ``M`` packed into a uint64;
    ``vectors`` is a uint64 array of input states.  The product XORs the
    columns selected by the set bits of each input.
    """
    result = np.zeros_like(vectors)
    one = np.uint64(1)
    for j in range(64):
        bit = (vectors >> np.uint64(j)) & one
        # bit is 0/1; multiplying selects the column where the bit is set.
        result ^= bit * columns[j]
    return result


def _matrix_power_columns(m: int) -> "np.ndarray":
    """Columns of ``T^(2**m)``, built by repeated squaring (cached)."""
    while len(_MATRIX_POWERS) <= m:
        if not _MATRIX_POWERS:
            identity = np.uint64(1) << np.arange(64, dtype=np.uint64)
            _MATRIX_POWERS.append(_xorshift_step_batch(identity))
        else:
            previous = _MATRIX_POWERS[-1]
            # Columns of M^2 are M applied to M's own columns.
            _MATRIX_POWERS.append(_matrix_apply(previous, previous))
    return _MATRIX_POWERS[m]


#: Block size for the bulk fill: states advance a whole block at a time
#: via byte-indexed lookup tables of ``T^_FILL_BLOCK`` (must be 2**k).
_FILL_BLOCK = 4096
_FILL_TABLES: List["np.ndarray"] = []


def _fill_tables() -> "np.ndarray":
    """Byte-sliced lookup tables for ``T^_FILL_BLOCK`` (cached).

    ``tables[i][b] == T^B((b << 8*i))``; linearity makes
    ``T^B(v) == XOR_i tables[i][(v >> 8*i) & 0xFF]`` -- eight gathers
    instead of a 64-column bit loop per block advance.
    """
    if not _FILL_TABLES:
        columns = _matrix_power_columns(_FILL_BLOCK.bit_length() - 1)
        byte_values = np.arange(256, dtype=np.uint64)
        tables = np.empty((8, 256), dtype=np.uint64)
        for i in range(8):
            tables[i] = _matrix_apply(columns, byte_values << np.uint64(8 * i))
        _FILL_TABLES.append(tables)
    return _FILL_TABLES[0]


def _advance_block(tables: "np.ndarray", states: "np.ndarray") -> "np.ndarray":
    """Apply ``T^_FILL_BLOCK`` elementwise via the byte tables."""
    mask = np.uint64(0xFF)
    result = tables[0][states & mask]
    for i in range(1, 8):
        result ^= tables[i][(states >> np.uint64(8 * i)) & mask]
    return result


def _states_by_decomposition(state: int, count: int) -> "np.ndarray":
    """States ``T^1(s), ..., T^count(s)`` via binary decomposition of k."""
    steps = np.arange(1, count + 1, dtype=np.uint64)
    states = np.full(count, state, dtype=np.uint64)
    m = 0
    while (1 << m) <= count:
        selected = ((steps >> np.uint64(m)) & np.uint64(1)).astype(bool)
        if selected.any():
            columns = _matrix_power_columns(m)
            states[selected] = _matrix_apply(columns, states[selected])
        m += 1
    return states


class XorShift64Star(object):
    """xorshift64* generator (Vigna 2016).

    Passes BigCrush on its high bits and costs three shifts, three xors and
    one multiply per output -- a faithful stand-in for the cheap PRNG the
    paper uses for geometric sampling.
    """

    def __init__(self, seed: int) -> None:
        if seed == 0:
            # A zero state would make the generator emit zeros forever.
            seed = 0x9E3779B97F4A7C15
        self._state = seed & MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit output."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & MASK64

    def next_float(self) -> float:
        """Return a float uniform in [0, 1)."""
        return self.next_u64() * _INV_2_64

    def next_below(self, bound: int) -> int:
        """Return an integer uniform in ``[0, bound)``.

        Uses the high bits (the strongest bits of xorshift64*) via the
        multiply-shift trick, which avoids the modulo bias of ``% bound``
        to within 2**-64.
        """
        if bound <= 0:
            raise ValueError("bound must be positive, got %r" % (bound,))
        return (self.next_u64() * bound) >> 64

    def fill_u64(self, count: int) -> "np.ndarray":
        """Bulk-draw ``count`` outputs, bit-identical to scalar calls.

        The xorshift64 state transition ``T`` is linear over GF(2), so
        the state after ``k`` steps is ``T^k`` applied to the current
        state.  Decomposing every ``k`` in ``1..count`` into powers of
        two lets one vectorised pass compute all ``count`` states with
        ``O(log count)`` cached bit-matrix applications instead of
        ``count`` Python-level steps -- and leaves the generator in
        exactly the state ``count`` scalar :meth:`next_u64` calls would.
        """
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        if count == 0:
            return np.zeros(0, dtype=np.uint64)
        if count <= _FILL_BLOCK:
            states = _states_by_decomposition(self._state, count)
        else:
            # Seed one block by decomposition, then jump whole blocks:
            # applying T^B elementwise to states (k+1 .. k+B) yields
            # states (k+B+1 .. k+2B) in eight table gathers.
            states = np.empty(count, dtype=np.uint64)
            block = _states_by_decomposition(self._state, _FILL_BLOCK)
            states[:_FILL_BLOCK] = block
            tables = _fill_tables()
            pos = _FILL_BLOCK
            while pos < count:
                block = _advance_block(tables, block)
                take = min(_FILL_BLOCK, count - pos)
                states[pos:pos + take] = block[:take]
                pos += take
        self._state = int(states[-1])
        with np.errstate(over="ignore"):
            return states * np.uint64(_XS_MULTIPLIER)

    def fill_floats(self, count: int) -> "np.ndarray":
        """Bulk :meth:`next_float`: ``count`` uniforms in [0, 1).

        Element-for-element identical to ``count`` scalar calls: the
        uint64 -> float64 conversion and the ``2**-64`` scaling both
        round exactly the way the scalar path's Python floats do.
        """
        return self.fill_u64(count).astype(np.float64) * _INV_2_64

    def getstate(self) -> int:
        """Return the internal state (for checkpointing)."""
        return self._state

    def setstate(self, state: int) -> None:
        """Restore a state previously returned by :meth:`getstate`."""
        if state == 0:
            raise ValueError("xorshift64* state must be nonzero")
        self._state = state & MASK64


def derive_stream_seed(base_seed: int, stream_id: int) -> int:
    """Derive the ``stream_id``-th independent 64-bit seed from ``base_seed``.

    SplitMix64 exists for exactly this job (Steele, Lea & Flood 2014):
    turning one user seed into many statistically independent generator
    seeds.  The stream index is spread with the golden-ratio increment
    before mixing so that (seed, 0), (seed, 1), ... land far apart in
    state space, and the first output is burned so stream 0 never equals
    the raw base seed.  Deterministic -- parallel workers seeded with
    ``derive_stream_seed(seed, shard_id)`` replay identically run to
    run -- and never zero, so the result is safe to hand to
    :class:`XorShift64Star` directly.
    """
    rng = SplitMix64((base_seed ^ ((stream_id * 0x9E3779B97F4A7C15) & MASK64)) & MASK64)
    rng.next_u64()
    return rng.next_nonzero_u64()
