"""Deterministic pseudo-random number generators.

The NitroSketch data plane must draw geometric variates cheaply and
reproducibly (paper Section 4.2, Idea B).  The C implementation uses a
xorshift-style generator; we mirror that with two small, well-known
generators:

* :class:`SplitMix64` -- used to derive independent seeds (it is the
  recommended seeding generator for the xorshift family).
* :class:`XorShift64Star` -- the workhorse generator for per-packet
  sampling decisions.

Both are implemented with plain integer arithmetic masked to 64 bits so
results are identical across platforms and Python versions.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1
#: Scale factor mapping a 64-bit integer into [0, 1).
_INV_2_64 = 1.0 / float(1 << 64)


class SplitMix64:
    """SplitMix64 generator (Steele, Lea & Flood 2014).

    A tiny, statistically solid generator whose main role here is turning
    one user seed into arbitrarily many independent 64-bit seeds for other
    generators and hash families.
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit output."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
        return z ^ (z >> 31)

    def next_nonzero_u64(self) -> int:
        """Return the next output, skipping zero (xorshift seeds must be nonzero)."""
        value = self.next_u64()
        while value == 0:
            value = self.next_u64()
        return value


class XorShift64Star(object):
    """xorshift64* generator (Vigna 2016).

    Passes BigCrush on its high bits and costs three shifts, three xors and
    one multiply per output -- a faithful stand-in for the cheap PRNG the
    paper uses for geometric sampling.
    """

    def __init__(self, seed: int) -> None:
        if seed == 0:
            # A zero state would make the generator emit zeros forever.
            seed = 0x9E3779B97F4A7C15
        self._state = seed & MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit output."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & MASK64

    def next_float(self) -> float:
        """Return a float uniform in [0, 1)."""
        return self.next_u64() * _INV_2_64

    def next_below(self, bound: int) -> int:
        """Return an integer uniform in ``[0, bound)``.

        Uses the high bits (the strongest bits of xorshift64*) via the
        multiply-shift trick, which avoids the modulo bias of ``% bound``
        to within 2**-64.
        """
        if bound <= 0:
            raise ValueError("bound must be positive, got %r" % (bound,))
        return (self.next_u64() * bound) >> 64

    def getstate(self) -> int:
        """Return the internal state (for checkpointing)."""
        return self._state

    def setstate(self, state: int) -> None:
        """Restore a state previously returned by :meth:`getstate`."""
        if state == 0:
            raise ValueError("xorshift64* state must be nonzero")
        self._state = state & MASK64
