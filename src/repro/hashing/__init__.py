"""Hashing substrate for the NitroSketch reproduction.

This package provides the hash-function machinery every sketch in the
repository is built on:

* :mod:`repro.hashing.prng` -- deterministic, fast pseudo-random number
  generators (xorshift64*, SplitMix64) used for seeding and for the
  geometric sampling in the NitroSketch data plane.
* :mod:`repro.hashing.families` -- k-wise independent hash families over
  the Mersenne prime ``2**61 - 1`` (pairwise and four-wise), including the
  ``{-1, +1}`` sign hashes Count Sketch requires, with vectorised (NumPy)
  batch evaluation.
* :mod:`repro.hashing.xxhash` -- a bit-exact pure-Python port of xxHash32,
  the hash the paper's C implementation uses, plus a vectorised variant.
* :mod:`repro.hashing.tabulation` -- simple tabulation hashing
  (3-independent, and behaves like a fully random function in practice).
"""

from repro.hashing.prng import SplitMix64, XorShift64Star
from repro.hashing.families import (
    MERSENNE_PRIME_61,
    KWiseHash,
    PairwiseHash,
    FourWiseHash,
    SignHash,
    HashPair,
    MultiplyShiftHash,
    MultiplyShiftSign,
    make_hash_pairs,
    derive_seeds,
)
from repro.hashing.xxhash import xxhash32, xxhash32_u64, xxhash32_batch
from repro.hashing.tabulation import TabulationHash

__all__ = [
    "SplitMix64",
    "XorShift64Star",
    "MERSENNE_PRIME_61",
    "KWiseHash",
    "PairwiseHash",
    "FourWiseHash",
    "SignHash",
    "HashPair",
    "MultiplyShiftHash",
    "MultiplyShiftSign",
    "make_hash_pairs",
    "derive_seeds",
    "xxhash32",
    "xxhash32_u64",
    "xxhash32_batch",
    "TabulationHash",
]
