"""Simple tabulation hashing.

Tabulation hashing (Zobrist 1970; analysed by Patrascu & Thorup 2012) is
3-independent yet behaves essentially like a fully random function for
Chernoff-style concentration -- a good high-quality alternative where a
sketch row wants stronger-than-pairwise behaviour without the cost of a
high-degree polynomial.  We use it for the UnivMon substream samplers,
which in the paper are implemented with strong hash functions.

A 64-bit key is split into 8 bytes; each byte indexes a table of 256
random 64-bit words, and the words are XORed together.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.prng import SplitMix64


class TabulationHash:
    """Tabulation hash ``[0, 2**64) -> [0, 2**64)`` (or reduced to a width).

    Parameters
    ----------
    seed:
        Deterministic seed for the eight lookup tables.
    width:
        Optional output range; when given, the 64-bit hash is reduced
        with the multiply-shift trick (unbiased to within 2**-64).
    """

    NUM_CHUNKS = 8
    CHUNK_BITS = 8

    def __init__(self, seed: int, width: int = 0) -> None:
        if width < 0:
            raise ValueError("width must be non-negative, got %d" % width)
        self.width = width
        rng = SplitMix64(seed)
        tables = np.empty((self.NUM_CHUNKS, 1 << self.CHUNK_BITS), dtype=np.uint64)
        for chunk in range(self.NUM_CHUNKS):
            for byte in range(1 << self.CHUNK_BITS):
                tables[chunk, byte] = rng.next_u64()
        self._tables = tables

    def hash64(self, key: int) -> int:
        """Return the full 64-bit tabulation hash of ``key``."""
        key &= (1 << 64) - 1
        acc = 0
        for chunk in range(self.NUM_CHUNKS):
            byte = (key >> (chunk * self.CHUNK_BITS)) & 0xFF
            acc ^= int(self._tables[chunk, byte])
        return acc

    def __call__(self, key: int) -> int:
        """Hash ``key``; ranged to ``[0, width)`` when a width was given."""
        h = self.hash64(key)
        if self.width:
            return (h * self.width) >> 64
        return h

    def bit(self, key: int) -> int:
        """Return a single unbiased hash bit (used by substream samplers)."""
        return self.hash64(key) & 1

    def batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised 64-bit hashing of an integer key array."""
        ks = np.asarray(keys).astype(np.uint64)
        acc = np.zeros(ks.shape, dtype=np.uint64)
        for chunk in range(self.NUM_CHUNKS):
            bytes_ = ((ks >> np.uint64(chunk * self.CHUNK_BITS)) & np.uint64(0xFF))
            acc ^= self._tables[chunk][bytes_.astype(np.int64)]
        return acc

    def bit_batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`bit`: one unbiased bit per key (int64 0/1)."""
        return (self.batch(keys) & np.uint64(1)).astype(np.int64)

    def batch_ranged(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised hashing reduced to ``[0, width)`` (requires a width)."""
        if not self.width:
            raise ValueError("batch_ranged requires a nonzero width")
        full = self.batch(keys)
        # Multiply-shift range reduction in two 32-bit halves to stay exact.
        return (full % np.uint64(self.width)).astype(np.int64)
