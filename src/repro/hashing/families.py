"""k-wise independent hash families over the Mersenne prime ``2**61 - 1``.

The sketches in the paper (Count-Min, Count Sketch, K-ary, UnivMon) need
pairwise -- and for some substream samplers four-wise -- independent hash
functions (paper Section 4.2: "usually require pair-wise or even four-wise
independent").  The standard construction is a random degree-(k-1)
polynomial over a prime field:

    h(x) = (a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod P

with ``P = 2**61 - 1`` a Mersenne prime, which admits a fast modular
reduction.  We provide scalar and NumPy-vectorised evaluation; the
vectorised path is the Python analogue of the paper's AVX batch hashing
(Idea D).

Classes
-------
KWiseHash
    Generic degree-(k-1) polynomial family mapped to ``[0, width)``.
PairwiseHash / FourWiseHash
    Convenience subclasses with k fixed.
SignHash
    Pairwise-independent ``{-1, +1}`` hash (Count Sketch's ``g_i``).
HashPair
    The (row-index hash, sign hash) bundle one sketch row uses.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hashing.prng import SplitMix64
from repro.kernels.mersenne import kwise_raw_batch, reduce_keys_mersenne

#: The Mersenne prime 2**61 - 1, the field modulus for all families here.
MERSENNE_PRIME_61 = (1 << 61) - 1

MASK64 = (1 << 64) - 1

#: Shared pre-boxed shift constant for the multiply-shift batch path.
_U64_32 = np.uint64(32)


def _mod_mersenne(value: int) -> int:
    """Reduce ``value`` modulo ``2**61 - 1`` using shift-add folding.

    Works for any non-negative value below ``2**122`` (one fold suffices
    for products of two field elements; we fold twice to be safe for
    accumulated Horner sums).
    """
    value = (value & MERSENNE_PRIME_61) + (value >> 61)
    value = (value & MERSENNE_PRIME_61) + (value >> 61)
    if value >= MERSENNE_PRIME_61:
        value -= MERSENNE_PRIME_61
    return value


class KWiseHash:
    """A k-wise independent hash ``[0, 2**61-1) -> [0, width)``.

    Parameters
    ----------
    k:
        Independence degree (2 for pairwise, 4 for four-wise).
    width:
        Output range size.  ``hash(x)`` is uniform on ``[0, width)`` up to
        the negligible bias of reducing a 61-bit value.
    seed:
        Deterministic seed for the polynomial coefficients.
    """

    def __init__(self, k: int, width: int, seed: int) -> None:
        if k < 1:
            raise ValueError("independence degree k must be >= 1, got %d" % k)
        if width < 1:
            raise ValueError("width must be >= 1, got %d" % width)
        self.k = k
        self.width = width
        rng = SplitMix64(seed)
        # Leading coefficient must be nonzero for full independence.
        coeffs = [rng.next_u64() % MERSENNE_PRIME_61 for _ in range(k)]
        while coeffs[-1] == 0 and k > 1:
            coeffs[-1] = rng.next_u64() % MERSENNE_PRIME_61
        self._coeffs: List[int] = coeffs
        # Highest-degree-first uint64 coefficients for the batch kernel,
        # plus the pre-boxed width (hot-path: no per-call scalar boxing).
        self._coeffs_u64 = np.array(coeffs[::-1], dtype=np.uint64)
        self._width_u64 = np.uint64(width)

    def raw(self, key: int) -> int:
        """Return the field element for ``key`` (before range reduction)."""
        acc = 0
        for coeff in reversed(self._coeffs):
            acc = _mod_mersenne(acc * (key % MERSENNE_PRIME_61) + coeff)
        return acc

    def __call__(self, key: int) -> int:
        """Hash ``key`` into ``[0, width)``."""
        return self.raw(key) % self.width

    def raw_batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`raw`: ``uint64`` field elements per key.

        Pure ``uint64`` arithmetic (32-bit split multiplies plus
        Mersenne shift-add folding -- see
        :mod:`repro.kernels.mersenne`); bit-exact with the scalar path.
        """
        return kwise_raw_batch(reduce_keys_mersenne(keys), self._coeffs_u64)

    def batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised hashing of an array of integer keys.

        Accepts any integer array; returns an ``int64`` array of bucket
        indices in ``[0, width)`` matching :meth:`__call__` bit-for-bit.
        """
        return (self.raw_batch(keys) % self._width_u64).astype(np.int64)


class PairwiseHash(KWiseHash):
    """Pairwise (2-wise) independent hash."""

    def __init__(self, width: int, seed: int) -> None:
        super().__init__(2, width, seed)


class FourWiseHash(KWiseHash):
    """Four-wise independent hash (needed by AMS-style L2 estimators)."""

    def __init__(self, width: int, seed: int) -> None:
        super().__init__(4, width, seed)


class SignHash:
    """Pairwise-independent sign hash ``g: keys -> {-1, +1}``.

    Count Sketch multiplies each update by ``g_i(x)``; Count-Min is the
    special case ``g == +1`` (paper Algorithm 1, line 3).  ``constant_one``
    produces that degenerate variant so both L1 and L2 modes share a code
    path.
    """

    def __init__(self, seed: int, constant_one: bool = False) -> None:
        self.constant_one = constant_one
        self._hash = KWiseHash(2, 2, seed)

    def __call__(self, key: int) -> int:
        if self.constant_one:
            return 1
        return 1 if self._hash(key) == 1 else -1

    def batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised sign evaluation; returns an int64 array of ±1."""
        keys = np.asarray(keys)
        if self.constant_one:
            return np.ones(keys.shape, dtype=np.int64)
        bits = self._hash.batch(keys)
        return (bits * 2 - 1).astype(np.int64)


class HashPair:
    """The (bucket hash, sign hash) pair backing one sketch row."""

    def __init__(self, width: int, seed: int, signed: bool = True) -> None:
        self.index = PairwiseHash(width, seed)
        self.sign = SignHash(seed ^ 0xA5A5A5A5A5A5A5A5, constant_one=not signed)

    def __call__(self, key: int):
        """Return ``(bucket, sign)`` for ``key``."""
        return self.index(key), self.sign(key)


def make_hash_pairs(
    depth: int,
    width: int,
    seed: int,
    signed: bool = True,
) -> List[HashPair]:
    """Create ``depth`` independent :class:`HashPair` rows.

    Each row receives a seed derived from ``seed`` via SplitMix64 so rows
    are mutually independent yet the whole sketch is reproducible from a
    single integer.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1, got %d" % depth)
    rng = SplitMix64(seed)
    return [HashPair(width, rng.next_u64(), signed=signed) for _ in range(depth)]


def derive_seeds(seed: int, count: int) -> List[int]:
    """Return ``count`` independent 64-bit seeds derived from ``seed``."""
    rng = SplitMix64(seed)
    return [rng.next_u64() for _ in range(count)]


class MultiplyShiftHash:
    """Dietzfelbinger multiply-shift hash: 2-universal, branch-free, fast.

    ``h(x) = fastrange(((a*x + b) mod 2**64) >> 32, width)`` with odd
    ``a``, where ``fastrange(v, w) = (v * w) >> 32`` maps a 32-bit value
    onto ``[0, width)`` without a modulo.  This is the family the hot
    vectorised update paths use: NumPy's ``uint64`` multiplication wraps
    modulo ``2**64`` natively so a batch of a million keys hashes in a
    handful of SIMD instructions -- the Python analogue of the paper's
    AVX hashing (Idea D).  Any positive ``width`` is supported.
    """

    def __init__(self, width: int, seed: int) -> None:
        if width < 1:
            raise ValueError("width must be positive, got %d" % width)
        if width > (1 << 32):
            raise ValueError("width must fit in 32 bits, got %d" % width)
        self.width = width
        rng = SplitMix64(seed)
        self._a = rng.next_nonzero_u64() | 1  # multiplier must be odd
        self._b = rng.next_u64()
        # Pre-boxed NumPy constants: boxing Python ints into uint64
        # scalars per batch call used to dominate this hot path.  Array
        # arithmetic wraps modulo 2**64 silently, so no errstate needed.
        self._a_u64 = np.uint64(self._a)
        self._b_u64 = np.uint64(self._b)
        self._width_u64 = np.uint64(width)

    def __call__(self, key: int) -> int:
        if self.width == 1:
            return 0
        mixed = ((self._a * (key & MASK64)) + self._b) & MASK64
        return ((mixed >> 32) * self.width) >> 32

    def batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorised hashing; returns int64 bucket indices."""
        if self.width == 1:
            return np.zeros(np.asarray(keys).shape, dtype=np.int64)
        ks = np.asarray(keys).astype(np.uint64, copy=False)
        mixed = ks * self._a_u64 + self._b_u64
        top = mixed >> _U64_32
        return ((top * self._width_u64) >> _U64_32).astype(np.int64)


class MultiplyShiftSign:
    """Branch-free ±1 sign hash built from one multiply-shift bit."""

    def __init__(self, seed: int, constant_one: bool = False) -> None:
        self.constant_one = constant_one
        self._hash = MultiplyShiftHash(2, seed)

    def __call__(self, key: int) -> int:
        if self.constant_one:
            return 1
        return 1 if self._hash(key) == 1 else -1

    def batch(self, keys: "np.ndarray") -> "np.ndarray":
        keys = np.asarray(keys)
        if self.constant_one:
            return np.ones(keys.shape, dtype=np.int64)
        return (self._hash.batch(keys) * 2 - 1).astype(np.int64)
