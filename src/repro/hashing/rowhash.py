"""xxhash32-based sketch row hashing (the C implementation's family).

The paper's implementation hashes flow keys with xxHash32, one seed per
sketch row, deriving the bucket from the hash value and the update sign
from a spare bit (Section 6).  :class:`XXHashRowHash` and
:class:`XXHashRowSign` provide that family behind the same interface as
the multiply-shift defaults, so sketches can be built bit-compatible
with the reference C layout::

    CountSketch(5, 1024, seed=7, hash_family="xxhash")

The multiply-shift family remains the default: it is 5-10x faster in
pure Python and 2-universal, which the proofs require; xxhash mode is
for fidelity studies and for matching C-side sketch state.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.xxhash import xxhash32_batch, xxhash32_u64

_U64_32 = np.uint64(32)
_U32_ONE = np.uint32(1)


class XXHashRowHash:
    """Bucket hash ``[0, 2**64) -> [0, width)`` via seeded xxhash32.

    The 32-bit hash is range-reduced with the fastrange trick
    (``(h * width) >> 32``), matching common C sketch implementations.
    """

    def __init__(self, width: int, seed: int) -> None:
        if width < 1:
            raise ValueError("width must be positive, got %d" % width)
        if width > (1 << 32):
            raise ValueError("width must fit in 32 bits, got %d" % width)
        self.width = width
        self.seed = seed & 0xFFFFFFFF
        # Pre-boxed constants: the batch path runs once per row per
        # batch, so per-call np.uint64(...) boxing is pure overhead.
        self._width_u64 = np.uint64(width)

    def __call__(self, key: int) -> int:
        return (xxhash32_u64(key, self.seed) * self.width) >> 32

    def batch(self, keys: "np.ndarray") -> "np.ndarray":
        hashes = xxhash32_batch(np.asarray(keys), self.seed).astype(np.uint64)
        return ((hashes * self._width_u64) >> _U64_32).astype(np.int64)


class XXHashRowSign:
    """±1 sign from the low bit of a seeded xxhash32 (the "spare bit")."""

    def __init__(self, seed: int, constant_one: bool = False) -> None:
        self.seed = seed & 0xFFFFFFFF
        self.constant_one = constant_one

    def __call__(self, key: int) -> int:
        if self.constant_one:
            return 1
        return 1 if xxhash32_u64(key, self.seed) & 1 else -1

    def batch(self, keys: "np.ndarray") -> "np.ndarray":
        keys = np.asarray(keys)
        if self.constant_one:
            return np.ones(keys.shape, dtype=np.int64)
        bits = xxhash32_batch(keys, self.seed) & _U32_ONE
        return (bits.astype(np.int64) * 2) - 1
