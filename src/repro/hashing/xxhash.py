"""Bit-exact pure-Python port of xxHash32.

The paper's C implementation hashes flow keys with the xxHash library
(Section 6: "we use the xxHash library's hash function").  Table 2 shows
``xxhash32`` is the single largest CPU hotspot (37.29%), which is what
motivates NitroSketch's hash-avoidance design -- so the reproduction keeps
the same function.

``xxhash32`` is validated against the reference test vectors published by
the xxHash project.  ``xxhash32_batch`` is a NumPy-vectorised variant for
fixed-width (8-byte) integer keys, the common case when flow identifiers
have already been folded to 64 bits.
"""

from __future__ import annotations

import struct

import numpy as np

_PRIME32_1 = 0x9E3779B1
_PRIME32_2 = 0x85EBCA77
_PRIME32_3 = 0xC2B2AE3D
_PRIME32_4 = 0x27D4EB2F
_PRIME32_5 = 0x165667B1
_MASK32 = 0xFFFFFFFF

# Pre-boxed NumPy constants for the batch path: boxing these per call
# (and re-entering np.errstate) used to cost more than the arithmetic.
# Array ops wrap modulo 2**32 silently, so no errstate is needed.
_U32_P1 = np.uint32(_PRIME32_1)
_U32_P2 = np.uint32(_PRIME32_2)
_U32_P3 = np.uint32(_PRIME32_3)
_U32_P4 = np.uint32(_PRIME32_4)
_U64_MASK32 = np.uint64(_MASK32)
_U64_32 = np.uint64(32)
_U32_13 = np.uint32(13)
_U32_15 = np.uint32(15)
_U32_16 = np.uint32(16)
_U32_17 = np.uint32(17)
_U32_ROT17 = np.uint32(32 - 17)


def _rotl32(value: int, count: int) -> int:
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * _PRIME32_2) & _MASK32
    acc = _rotl32(acc, 13)
    return (acc * _PRIME32_1) & _MASK32


def xxhash32(data: bytes, seed: int = 0) -> int:
    """Compute the 32-bit xxHash of ``data`` with the given ``seed``.

    Bit-exact against the reference implementation (see the test vectors
    in ``tests/test_hashing.py``).
    """
    seed &= _MASK32
    length = len(data)
    offset = 0

    if length >= 16:
        v1 = (seed + _PRIME32_1 + _PRIME32_2) & _MASK32
        v2 = (seed + _PRIME32_2) & _MASK32
        v3 = seed
        v4 = (seed - _PRIME32_1) & _MASK32
        limit = length - 16
        while offset <= limit:
            lane1, lane2, lane3, lane4 = struct.unpack_from("<IIII", data, offset)
            v1 = _round(v1, lane1)
            v2 = _round(v2, lane2)
            v3 = _round(v3, lane3)
            v4 = _round(v4, lane4)
            offset += 16
        acc = (
            _rotl32(v1, 1) + _rotl32(v2, 7) + _rotl32(v3, 12) + _rotl32(v4, 18)
        ) & _MASK32
    else:
        acc = (seed + _PRIME32_5) & _MASK32

    acc = (acc + length) & _MASK32

    while offset + 4 <= length:
        (lane,) = struct.unpack_from("<I", data, offset)
        acc = (acc + lane * _PRIME32_3) & _MASK32
        acc = (_rotl32(acc, 17) * _PRIME32_4) & _MASK32
        offset += 4

    while offset < length:
        acc = (acc + data[offset] * _PRIME32_5) & _MASK32
        acc = (_rotl32(acc, 11) * _PRIME32_1) & _MASK32
        offset += 1

    acc ^= acc >> 15
    acc = (acc * _PRIME32_2) & _MASK32
    acc ^= acc >> 13
    acc = (acc * _PRIME32_3) & _MASK32
    acc ^= acc >> 16
    return acc


def xxhash32_u64(key: int, seed: int = 0) -> int:
    """Hash a 64-bit integer key (little-endian packed) with xxHash32."""
    return xxhash32(struct.pack("<Q", key & 0xFFFFFFFFFFFFFFFF), seed)


def _rotl17_batch(arr: "np.ndarray") -> "np.ndarray":
    return (arr << _U32_17) | (arr >> _U32_ROT17)


def xxhash32_batch(keys: "np.ndarray", seed=0) -> "np.ndarray":
    """Vectorised xxHash32 over an array of 64-bit integer keys.

    Equivalent to ``[xxhash32_u64(k, seed) for k in keys]`` but computed
    with NumPy ``uint32`` lane arithmetic -- the Python counterpart of the
    paper's AVX-parallel hashing (Idea D).  Returns a ``uint32`` array.

    ``seed`` may be a Python int or a ``uint64`` array that broadcasts
    against ``keys`` -- e.g. shape ``(depth, 1)`` row seeds against
    ``(n,)`` keys hashes the batch for *every* sketch row in one fused
    call (the :class:`repro.kernels.SketchKernel` fast path).
    """
    ks = np.asarray(keys).astype(np.uint64, copy=False)
    lo = (ks & _U64_MASK32).astype(np.uint32)
    hi = (ks >> _U64_32).astype(np.uint32)

    if isinstance(seed, np.ndarray):
        # (seed + PRIME5 + key length) mod 2**32, per broadcast element.
        acc0 = (
            (seed.astype(np.uint64, copy=False) + np.uint64(_PRIME32_5 + 8))
            & _U64_MASK32
        ).astype(np.uint32)
    else:
        acc0 = np.uint32((seed + _PRIME32_5 + 8) & _MASK32)
    # First 4-byte lane (low word).
    acc = acc0 + lo * _U32_P3
    acc = _rotl17_batch(acc) * _U32_P4
    # Second 4-byte lane (high word).
    acc = acc + hi * _U32_P3
    acc = _rotl17_batch(acc) * _U32_P4
    # Avalanche.
    acc = acc ^ (acc >> _U32_15)
    acc = acc * _U32_P2
    acc = acc ^ (acc >> _U32_13)
    acc = acc * _U32_P3
    acc = acc ^ (acc >> _U32_16)
    return acc
