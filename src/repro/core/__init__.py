"""NitroSketch -- the paper's core contribution.

Public surface:

* :class:`NitroSketch` -- wraps any canonical sketch with geometric
  counter-array sampling (Algorithm 1).
* :class:`NitroConfig` / :class:`NitroMode` -- parameters and the
  FIXED / ALWAYS_LINE_RATE / ALWAYS_CORRECT operating modes.
* :class:`GeometricSampler` -- the Idea-B skip sampler.
* Convenience factories for the four sketches the paper evaluates:
  :func:`nitro_countmin`, :func:`nitro_countsketch`, :func:`nitro_kary`,
  :func:`nitro_univmon`.
"""

from typing import Sequence, Union

from repro.core.config import (
    NitroConfig,
    NitroMode,
    PROBABILITY_LADDER,
    P_MIN,
    snap_to_ladder,
)
from repro.core.geometric import GeometricSampler, geometric_positions
from repro.core.modes import AlwaysCorrectController, AlwaysLineRateController
from repro.core.nitro import NitroSketch
from repro.core.univmon_nitro import NitroUnivMon
from repro.hashing.families import derive_seeds
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch
from repro.sketches.univmon import UnivMon

__all__ = [
    "NitroSketch",
    "NitroUnivMon",
    "NitroConfig",
    "NitroMode",
    "PROBABILITY_LADDER",
    "P_MIN",
    "snap_to_ladder",
    "GeometricSampler",
    "geometric_positions",
    "AlwaysCorrectController",
    "AlwaysLineRateController",
    "nitro_countmin",
    "nitro_countsketch",
    "nitro_kary",
    "nitro_univmon",
]


def nitro_countmin(
    depth: int = 5,
    width: int = 10000,
    probability: float = 0.01,
    mode: Union[NitroMode, str] = NitroMode.FIXED,
    top_k: int = 100,
    seed: int = 0,
    **config_kwargs,
) -> NitroSketch:
    """NitroSketch-accelerated Count-Min (the paper's CM configuration)."""
    config = NitroConfig(
        probability=probability, mode=mode, top_k=top_k, seed=seed, **config_kwargs
    )
    return NitroSketch(CountMinSketch(depth, width, seed), config)


def nitro_countsketch(
    depth: int = 5,
    width: int = 102400,
    probability: float = 0.01,
    mode: Union[NitroMode, str] = NitroMode.FIXED,
    top_k: int = 100,
    seed: int = 0,
    **config_kwargs,
) -> NitroSketch:
    """NitroSketch-accelerated Count Sketch (paper: 5 x 102400 / 2 MB)."""
    config = NitroConfig(
        probability=probability, mode=mode, top_k=top_k, seed=seed, **config_kwargs
    )
    return NitroSketch(CountSketch(depth, width, seed), config)


def nitro_kary(
    depth: int = 10,
    width: int = 51200,
    probability: float = 0.01,
    mode: Union[NitroMode, str] = NitroMode.FIXED,
    top_k: int = 100,
    seed: int = 0,
    **config_kwargs,
) -> NitroSketch:
    """NitroSketch-accelerated K-ary sketch (paper: 10 x 51200 / 2 MB)."""
    config = NitroConfig(
        probability=probability, mode=mode, top_k=top_k, seed=seed, **config_kwargs
    )
    return NitroSketch(KArySketch(depth, width, seed), config)


def nitro_univmon(
    levels: int = 14,
    depth: int = 5,
    widths: Union[int, Sequence[int]] = 10000,
    k: int = 100,
    probability: float = 0.01,
    mode: Union[NitroMode, str] = NitroMode.FIXED,
    seed: int = 0,
    integration: str = "whole_structure",
    **config_kwargs,
) -> UnivMon:
    """UnivMon accelerated by NitroSketch.

    ``integration`` selects between the two forms the paper describes:

    * ``"whole_structure"`` (default) -- the implementation's data plane
      (Figure 7b): one geometric process over all ``levels x depth``
      counter arrays, so unsampled packets perform no hashing at all.
      This is what reaches the in-memory 83 Mpps of Figure 13a.
    * ``"per_level"`` -- "replacing each Count Sketch instance in UnivMon
      with ... NitroSketch" (Section 8): each level gets its own
      NitroSketch wrapper and geometric sampler.

    Both sample every level's substream at rate ``p`` and carry the same
    accuracy guarantees; they differ only in common-path cost.
    """
    if integration == "whole_structure":
        config = NitroConfig(
            probability=probability, mode=mode, top_k=k, seed=seed, **config_kwargs
        )
        return NitroUnivMon(
            levels=levels, depth=depth, widths=widths, k=k, config=config
        )
    if integration != "per_level":
        raise ValueError(
            "integration must be 'whole_structure' or 'per_level', got %r"
            % (integration,)
        )
    level_seeds = derive_seeds(seed ^ 0x517CB3, levels)

    def factory(level: int, d: int, width: int, topk: int, sketch_seed: int) -> NitroSketch:
        config = NitroConfig(
            probability=probability,
            mode=mode,
            top_k=topk,
            seed=level_seeds[level],
            **config_kwargs,
        )
        return NitroSketch(CountSketch(d, width, sketch_seed), config)

    return UnivMon(
        levels=levels,
        depth=depth,
        widths=widths,
        k=k,
        seed=seed,
        level_factory=factory,
    )
