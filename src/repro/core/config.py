"""NitroSketch configuration and parameter selection.

Bundles the knobs of Algorithm 1 and the sizing rules of Section 5 into
one validated object so callers can either specify raw (depth, width, p)
or derive them from an (epsilon, delta) accuracy target exactly the way
the paper's evaluation does ("we select parameters based on a 5% accuracy
guarantee", Section 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.analysis import theory


class NitroMode(enum.Enum):
    """Operating mode of the NitroSketch data plane (Section 4.2, Idea C)."""

    #: Fixed sampling probability (the throughput/accuracy evaluations use
    #: fixed p = 0.01 / 0.1).
    FIXED = "fixed"
    #: Adapt p to the packet arrival rate each epoch; converges fast, always
    #: keeps per-time-unit work constant.
    ALWAYS_LINE_RATE = "always_line_rate"
    #: Start at p = 1 (exact) and begin sampling only once the L2 convergence
    #: test passes; accurate from the first packet.
    ALWAYS_CORRECT = "always_correct"


#: The discrete sampling-rate ladder of AlwaysLineRate mode
#: (Section 4.3: "p in {1, 2^-1, 2^-2, ..., 2^-7}").
PROBABILITY_LADDER: List[float] = [2.0**-i for i in range(0, 8)]

#: The smallest ladder rung, used to size memory for the worst case.
P_MIN = PROBABILITY_LADDER[-1]


def snap_to_ladder(probability: float) -> float:
    """Round ``probability`` down to the nearest ladder rung.

    AlwaysLineRate only uses powers of two so the counter scaling
    ``p^-1`` stays an exact small integer.  Values below the bottom rung
    clamp to ``P_MIN``; values >= 1 clamp to 1.
    """
    if probability >= 1.0:
        return 1.0
    for rung in PROBABILITY_LADDER:
        if probability >= rung:
            return rung
    return P_MIN


@dataclass
class NitroConfig:
    """Validated NitroSketch parameters.

    Attributes
    ----------
    probability:
        Row-sampling probability ``p`` (the fixed value, or the floor
        ``p_min`` for the adaptive modes).
    mode:
        Operating mode (fixed / AlwaysLineRate / AlwaysCorrect).
    epsilon, delta:
        Accuracy target used for sizing and the convergence threshold.
    top_k:
        Heavy keys tracked alongside the sketch (0 disables the heap).
    convergence_check_period:
        ``Q`` in Algorithm 1 -- how often (in packets) AlwaysCorrect
        evaluates the convergence test (paper example: Q = 1000).
    adaptation_epoch_seconds:
        AlwaysLineRate rate-measurement epoch (paper: 100 ms).
    target_update_rate_mpps:
        The per-row update budget AlwaysLineRate aims for; p is chosen as
        ``target / measured_rate`` snapped to the ladder (Figure 6's
        example numbers -- 40 Mpps -> 1/64, 10 Mpps -> 1/16 -- imply a
        0.625 Mpps budget, the default).
    sampling:
        ``"geometric"`` (Idea B, default) or ``"bernoulli"`` -- the
        per-row coin-flip realisation of Idea A *without* the geometric
        optimisation.  Statistically identical; kept as the Figure-9b
        ablation baseline showing the PRNG cost Idea B removes.
    seed:
        Seed for the geometric sampler.
    """

    probability: float = 0.01
    mode: NitroMode = NitroMode.FIXED
    epsilon: float = 0.05
    delta: float = 0.05
    top_k: int = 100
    convergence_check_period: int = 1000
    adaptation_epoch_seconds: float = 0.1
    target_update_rate_mpps: float = 0.625
    sampling: str = "geometric"
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1], got %r" % (self.probability,))
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1), got %r" % (self.epsilon,))
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be in (0, 1), got %r" % (self.delta,))
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0, got %d" % self.top_k)
        if self.convergence_check_period < 1:
            raise ValueError("convergence_check_period must be >= 1")
        if self.adaptation_epoch_seconds <= 0:
            raise ValueError("adaptation_epoch_seconds must be positive")
        if self.sampling not in ("geometric", "bernoulli"):
            raise ValueError(
                "sampling must be 'geometric' or 'bernoulli', got %r" % (self.sampling,)
            )
        if isinstance(self.mode, str):
            self.mode = NitroMode(self.mode)

    # -- derived quantities -------------------------------------------------

    def convergence_threshold(self) -> float:
        """The AlwaysCorrect threshold ``T`` for this configuration."""
        return theory.convergence_threshold(self.epsilon, self.probability)

    def recommended_depth(self) -> int:
        """Rows for the configured delta: ``ceil(log2 1/delta)``."""
        return theory.sketch_depth(self.delta)

    def recommended_width(self, guarantee: str = "l2") -> int:
        """Width for the configured target.

        ``guarantee='l2'`` uses Theorem 2/5 sizing (Count Sketch style);
        ``'l1'`` uses Theorem 1 sizing (Count-Min style).
        """
        if guarantee == "l2":
            if self.mode is NitroMode.ALWAYS_CORRECT:
                return theory.alwayscorrect_width(self.epsilon, self.probability)
            return theory.linerate_width(self.epsilon, self.probability)
        if guarantee == "l1":
            return theory.countmin_width(self.epsilon)
        raise ValueError("guarantee must be 'l1' or 'l2', got %r" % (guarantee,))

    def probability_for_rate(self, rate_mpps: float) -> float:
        """AlwaysLineRate's p for a measured arrival rate (Figure 6)."""
        if rate_mpps <= 0:
            return 1.0
        return snap_to_ladder(self.target_update_rate_mpps / rate_mpps)

    def for_shard(self, shard_id: int) -> "NitroConfig":
        """A copy of this config with the sampler seed re-derived for a shard.

        Parallel ingest runs one NitroSketch per RSS shard; each shard
        must draw an *independent* geometric sampling stream (identical
        streams would correlate the row-sampling noise across shards and
        void the Theorem-2 variance analysis), yet stay deterministic so
        a run is reproducible.  The derivation is
        ``derive_stream_seed(seed, shard_id)`` -- a pure function of
        (base seed, shard id), so re-running a worker replays its exact
        stream.  Negative ids (the merge-base sentinel) keep the base
        seed: that monitor never ingests, it only receives merges.
        """
        from dataclasses import replace

        from repro.hashing.prng import derive_stream_seed

        if shard_id < 0:
            return replace(self)
        return replace(self, seed=derive_stream_seed(self.seed, shard_id))
