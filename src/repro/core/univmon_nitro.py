"""NitroSketch-integrated UnivMon.

Two ways to combine NitroSketch with UnivMon exist in the paper:

* conceptually, "replacing each Count Sketch instance in UnivMon with
  ... NitroSketch" (Section 8) -- the per-level wrapping
  :func:`repro.core.nitro_univmon` provides with
  ``integration='per_level'``;
* operationally, the implementation's data plane (Figure 7b): geometric
  pre-processing runs *first*, so an unsampled packet performs **no**
  hash at all -- not even the level-membership hash.  This is what makes
  the in-memory figure of 83 Mpps possible (Figure 13a): the common-path
  cost is one slot-counter decrement.

:class:`NitroUnivMon` implements the operational form: a single
geometric process walks the virtual row-major slot sequence of the
*entire* structure (``levels x depth`` slots per packet).  A sampled
slot ``(level, row)`` first checks -- with the one shared sampler hash
-- whether the key belongs to that level's substream; if so it applies
the ``p^-1``-scaled row update.  Each level's substream is therefore
sampled at exactly rate ``p``, preserving the per-level Theorem-2
guarantee, while unsampled packets cost O(1).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.config import NitroConfig, NitroMode
from repro.core.geometric import GeometricSampler, geometric_positions
from repro.core.modes import AlwaysCorrectController, AlwaysLineRateController
from repro.core.nitro import PREPROCESS_CYCLES_PER_PACKET
from repro.sketches.univmon import UnivMon, default_level_factory
from repro.telemetry.profile import NULL_PROFILER


class NitroUnivMon(UnivMon):
    """UnivMon driven by whole-structure geometric counter-array sampling."""

    def __init__(
        self,
        levels: int = 14,
        depth: int = 5,
        widths: Union[int, Sequence[int]] = 10000,
        k: int = 100,
        config: Optional[NitroConfig] = None,
        **config_kwargs,
    ) -> None:
        if config is None:
            config = NitroConfig(**config_kwargs)
        elif config_kwargs:
            raise TypeError("pass either a config object or keyword arguments, not both")
        super().__init__(
            levels=levels,
            depth=depth,
            widths=widths,
            k=k,
            seed=config.seed,
            level_factory=default_level_factory,
        )
        self.config = config
        self.sampler = GeometricSampler(config.probability, config.seed ^ 0x0417)
        self._slots_per_packet = levels * depth
        self._pending = self.sampler.next_gap() - 1
        self._packets_sampled = 0
        self._batch_rng = np.random.default_rng(config.seed ^ 0x7A7A7A7A)
        # Same stage-profiler contract as NitroSketch: assign a live
        # StageProfiler to time geometric_skip/scatter/query per batch.
        self.profiler = NULL_PROFILER

        self.linerate: Optional[AlwaysLineRateController] = None
        self.correctness: Optional[AlwaysCorrectController] = None
        if config.mode is NitroMode.ALWAYS_LINE_RATE:
            self.linerate = AlwaysLineRateController(config)
        elif config.mode is NitroMode.ALWAYS_CORRECT:
            self.correctness = AlwaysCorrectController(
                config, self.sketches[0].sketch
            )
            self.sampler.set_probability(1.0)

    # -- properties -----------------------------------------------------------

    @property
    def probability(self) -> float:
        return self.sampler.probability

    @property
    def converged(self) -> bool:
        if self.correctness is None:
            return True
        return self.correctness.converged

    @property
    def packets_sampled(self) -> int:
        return self._packets_sampled

    # -- data plane -------------------------------------------------------------

    def update(self, key: int, weight: float = 1.0, timestamp: Optional[float] = None) -> None:
        """Process one packet: pre-processing first, hashing only if sampled."""
        self.ops.packet()
        self.ops.fixed(PREPROCESS_CYCLES_PER_PACKET)
        self.packets_seen += 1
        self.total += weight
        self._mode_hooks(timestamp)

        probability = self.sampler.probability
        if probability >= 1.0:
            # Exact phase (AlwaysCorrect warm-up): classic UnivMon update.
            self._packets_sampled += 1
            self.ops.hash()
            deepest = self.sampled_depth(key)
            for level in range(deepest + 1):
                self.sketches[level].update(key, weight)
            return

        slots = self._slots_per_packet
        depth = self.depth
        inverse = weight / probability
        membership: Optional[int] = None
        updated_levels = set()
        while self._pending < slots:
            level, row = divmod(self._pending, depth)
            if membership is None:
                # One shared hash resolves membership at every level.
                self.ops.hash()
                membership = self.sampled_depth(key)
            if level <= membership:
                self.sketches[level].sketch.row_update(row, key, inverse)
                updated_levels.add(level)
            self._pending += self.sampler.next_gap()
        self._pending -= slots
        if updated_levels:
            self._packets_sampled += 1
            for level in updated_levels:
                unit = self.sketches[level]
                unit.topk.offer(key, unit.sketch.query(key))

    def _mode_hooks(self, timestamp: Optional[float]) -> None:
        if self.linerate is not None:
            new_probability = self.linerate.on_packet(timestamp)
            if new_probability is not None:
                self.sampler.set_probability(new_probability)
        elif self.correctness is not None and not self.correctness.converged:
            if self.correctness.on_packet():
                self.sampler.set_probability(self.config.probability)

    def update_batch(
        self,
        keys: "np.ndarray",
        weights: Optional["np.ndarray"] = None,
        duration_seconds: Optional[float] = None,
    ) -> None:
        """Vectorised whole-structure sampling (Idea D)."""
        keys = np.asarray(keys)
        count = len(keys)
        if count == 0:
            return
        profiler = self.profiler
        profiler.tick()
        self.ops.packet(count)
        self.ops.fixed(PREPROCESS_CYCLES_PER_PACKET * count)
        self.packets_seen += count
        self.total += count if weights is None else float(np.sum(weights))

        if self.linerate is not None and duration_seconds is not None:
            new_probability = self.linerate.on_batch(count, duration_seconds)
            if new_probability is not None:
                self.sampler.set_probability(new_probability)
        if self.correctness is not None and not self.correctness.converged:
            self._packets_sampled += count
            with profiler.stage("exact_update"):
                self._exact_batch(keys, weights)
            if self.correctness.on_batch(count):
                self.sampler.set_probability(self.config.probability)
            return

        probability = self.sampler.probability
        if probability >= 1.0:
            self._packets_sampled += count
            with profiler.stage("exact_update"):
                self._exact_batch(keys, weights)
            return

        with profiler.stage("geometric_skip"):
            slots = self._slots_per_packet
            depth = self.depth
            total_slots = count * slots
            if self._pending >= total_slots:
                self._pending -= total_slots
                return
            first = self._pending
            tail, leftover = geometric_positions(
                probability, total_slots - first - 1, self._batch_rng
            )
            positions = np.concatenate(
                [np.array([first], dtype=np.int64), first + 1 + tail]
            )
            self._pending = leftover
            self.ops.prng(len(positions))

            packet_idx = positions // slots
            slot_idx = positions % slots
            level_idx = slot_idx // depth
            row_idx = slot_idx % depth

            sampled_keys = keys[packet_idx]
            # One membership hash per sampled position (scalar path pays one
            # per sampled *packet*; bill per unique packet).
            unique_packets = np.unique(packet_idx)
            self.ops.hash(len(unique_packets))
            membership = self.sampled_depth_batch(sampled_keys)
            in_level = level_idx <= membership

            inverse = 1.0 / probability
            if weights is None:
                slot_weights = np.full(positions.shape, inverse, dtype=np.float64)
            else:
                slot_weights = np.asarray(weights, dtype=np.float64)[packet_idx] * inverse

        kernel_profiler = profiler if profiler.active else None
        updated_keys = {}
        for level in range(self.levels):
            level_mask = (level_idx == level) & in_level
            if not np.any(level_mask):
                continue
            sketch = self.sketches[level].sketch
            level_rows = row_idx[level_mask]
            level_keys = sampled_keys[level_mask]
            # Fused per-level scatter: one kernel call replaces the old
            # per-row mask/np.add.at loop, with identical op accounting
            # (one hash + one counter update per sampled slot).
            self.ops.hash(len(level_keys))
            sketch.kernel.slot_update(
                level_rows, level_keys, slot_weights[level_mask],
                profiler=kernel_profiler,
            )
            self.ops.counter_update(len(level_keys))
            updated_keys[level] = np.unique(level_keys)

        self._packets_sampled += int(
            np.unique(packet_idx[in_level]).size
        )
        with profiler.stage("query"):
            for level, unique_keys in updated_keys.items():
                unit = self.sketches[level]
                estimates = unit.sketch.query_batch(unique_keys)
                for key, estimate in zip(unique_keys.tolist(), estimates.tolist()):
                    unit.topk.offer(int(key), float(estimate))

    def _exact_batch(self, keys, weights) -> None:
        """Vanilla UnivMon batch path, without re-counting packets/total."""
        super().update_batch(keys, weights, count_packets=False)

    # -- bookkeeping ----------------------------------------------------------

    def memory_bytes(self) -> int:
        return super().memory_bytes()

    def reset(self) -> None:
        """Reset-equals-fresh, mirroring ``__init__`` order (see
        :meth:`NitroSketch.reset`): PRNG cursors reseed and every
        controller -- including AlwaysLineRate's ``current_probability``
        -- returns to its constructed state."""
        super().reset()
        self._packets_sampled = 0
        self.sampler.reset(self.config.probability)
        self._pending = self.sampler.next_gap() - 1
        self._batch_rng = np.random.default_rng(self.config.seed ^ 0x7A7A7A7A)
        if self.linerate is not None:
            self.linerate.reset()
        if self.correctness is not None:
            self.correctness.reset()
            self.sampler.set_probability(1.0)
