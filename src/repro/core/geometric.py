"""Geometric sampling of counter-array slots (paper Idea B, Figure 5).

Uniformly sampling each (packet, row) slot with probability ``p`` is
mathematically equivalent to drawing, after each sampled slot, a
Geometric(p) variate telling how many slots to skip until the next one.
The win is operational: unsampled slots cost a single integer decrement
instead of a PRNG draw, which is what lets NitroSketch pass 40 GbE where
per-packet coin flips cannot (Section 4.1, Strawman 2 lesson).

:class:`GeometricSampler` draws the variates with the inverse-CDF method
``G = floor(ln U / ln(1 - p)) + 1`` over a deterministic xorshift64*
stream, and degrades gracefully to "every slot" at ``p = 1``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.hashing.prng import XorShift64Star
from repro.metrics.opcount import NULL_OPS
from repro.telemetry import NULL_TELEMETRY


class GeometricSampler:
    """Draws Geometric(p) inter-sample gaps (support {1, 2, 3, ...}).

    The sampling probability can be changed at any time (the adaptive
    modes do); draws made after the change use the new ``p``.
    """

    def __init__(self, probability: float, seed: int = 0) -> None:
        self.ops = NULL_OPS
        self.telemetry = NULL_TELEMETRY
        self._seed = seed
        self._rng = XorShift64Star(seed or 0x9E3779B97F4A7C15)
        self._log1m: float = 0.0
        self._probability: float = 1.0
        self.set_probability(probability)

    def reset(self, probability: Optional[float] = None) -> None:
        """Reseed the PRNG to its initial cursor (and optionally reset ``p``).

        After ``reset`` the sampler replays exactly the gap sequence a
        freshly-constructed sampler with the same seed would draw --
        the contract :meth:`NitroSketch.reset` relies on for
        reset-equals-fresh equivalence.
        """
        self._rng = XorShift64Star(self._seed or 0x9E3779B97F4A7C15)
        if probability is not None:
            self.set_probability(probability)

    @property
    def probability(self) -> float:
        """Current per-slot sampling probability ``p``."""
        return self._probability

    def set_probability(self, probability: float) -> None:
        """Change ``p``; affects draws made from now on."""
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1], got %r" % (probability,))
        self._probability = probability
        self._log1m = math.log1p(-probability) if probability < 1.0 else 0.0
        self.telemetry.gauge("nitro_sampling_probability", probability)

    def next_gap(self) -> int:
        """Slots until (and including) the next sampled slot.

        Returns 1 with probability ``p``, 2 with ``p(1-p)``, etc.  At
        ``p = 1`` every slot is sampled and no PRNG draw is made -- the
        AlwaysCorrect warm-up therefore costs zero sampling overhead.
        """
        if self._probability >= 1.0:
            return 1
        self.ops.prng()
        self.telemetry.count("nitro_geometric_draws_total")
        u = self._rng.next_float()
        # Guard the measure-zero u == 0 case (log would be -inf).
        while u <= 0.0:
            u = self._rng.next_float()
        return int(math.log(u) / self._log1m) + 1

    def gaps_batch(self, count: int) -> "np.ndarray":
        """Draw ``count`` gaps at once (used by the buffered batch path)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self._probability >= 1.0:
            return np.ones(count, dtype=np.int64)
        self.ops.prng(count)
        self.telemetry.count("nitro_geometric_draws_total", count)
        uniforms = self._rng.fill_floats(count)
        uniforms = np.clip(uniforms, np.finfo(np.float64).tiny, None)
        return (np.log(uniforms) / self._log1m).astype(np.int64) + 1

    def expected_gap(self) -> float:
        """Mean inter-sample gap, ``1/p``."""
        return 1.0 / self._probability

    def getstate(self) -> dict:
        """Snapshot probability + PRNG cursor (for checkpointing)."""
        return {"probability": self._probability, "rng": self._rng.getstate()}

    def setstate(self, state: dict) -> None:
        """Restore a snapshot from :meth:`getstate`; replays identically."""
        self.set_probability(float(state["probability"]))
        self._rng.setstate(int(state["rng"]))


def geometric_positions(
    probability: float, total_slots: int, rng: "np.random.Generator"
):
    """Vectorised geometric slot sampling over ``[0, total_slots)``.

    Simulates the slot process "skip Geometric(p)-1 slots, sample one,
    repeat" from a fresh start and returns ``(positions, leftover)``:

    * ``positions`` -- int64 array of sampled slot indices ``< total_slots``
      (the first sampled slot is ``G1 - 1`` for the first gap ``G1``);
    * ``leftover`` -- how many slots of the *next* range to skip before its
      first sample, i.e. ``first_position_beyond - total_slots``.

    This is the fully vectorised path used by
    :meth:`repro.core.nitro.NitroSketch.update_batch` (Idea D): one bulk
    RNG call replaces ~``p * total_slots`` scalar draws.
    """
    if not 0.0 < probability <= 1.0:
        raise ValueError("probability must be in (0, 1], got %r" % (probability,))
    if total_slots < 0:
        raise ValueError("total_slots must be non-negative")
    if probability >= 1.0:
        return np.arange(total_slots, dtype=np.int64), 0
    expected = probability * total_slots
    # Overshoot by 6 sigma so one bulk draw almost always covers the range.
    budget = int(expected + 6.0 * math.sqrt(expected + 1.0)) + 2
    positions = np.cumsum(rng.geometric(probability, size=budget)).astype(np.int64) - 1
    while positions[-1] < total_slots:
        extra = (
            np.cumsum(rng.geometric(probability, size=budget)).astype(np.int64)
            + positions[-1]
        )
        positions = np.concatenate([positions, extra])
    beyond = positions[positions >= total_slots]
    leftover = int(beyond[0]) - total_slots
    return positions[positions < total_slots], leftover
