"""Adaptive-mode controllers for NitroSketch (paper Idea C, Section 4.3).

Two controllers, matching Algorithm 1:

* :class:`AlwaysLineRateController` -- measures the packet arrival rate
  over fixed wall-clock epochs (100 ms in the paper) and sets the
  sampling probability inversely proportional to it, snapped to the
  ``{1, 1/2, ..., 1/128}`` ladder.  Keeps data-plane work per time unit
  roughly constant regardless of offered load.
* :class:`AlwaysCorrectController` -- keeps ``p = 1`` (exact updates)
  until the sketch's median row sum-of-squares exceeds the convergence
  threshold ``T = 121(1 + eps sqrt(p)) eps^-4 p^-2`` (checked every ``Q``
  packets), then releases the sketch into sampling.  Guarantees the
  eps*L2 bound from the very first packet (Theorem 5).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import NitroConfig
from repro.sketches.base import CanonicalSketch
from repro.telemetry import NULL_TELEMETRY


class AlwaysLineRateController:
    """Epoch-based rate adaptation (Algorithm 1 lines 5-9).

    Feed packet timestamps (seconds) via :meth:`on_packet`; at each epoch
    boundary it returns the new sampling probability (or ``None`` when
    unchanged).  Without timestamps the controller cannot measure a rate
    and leaves ``p`` alone, which degrades to fixed-probability mode.
    """

    def __init__(self, config: NitroConfig) -> None:
        self.config = config
        self.current_probability = config.probability
        self.telemetry = NULL_TELEMETRY
        self._epoch_start: Optional[float] = None
        self._epoch_packets = 0
        # Batch-path epoch accumulators: packets and wall-clock time
        # gathered since the last batch-granularity epoch closed.
        self._batch_packets = 0
        self._batch_elapsed = 0.0
        #: History of (timestamp, probability) adjustments, for inspection.
        self.adjustments = []

    def reset(self) -> None:
        """Return to the freshly-constructed state (config retained).

        :meth:`NitroSketch.reset` calls this so the controller's
        ``current_probability`` snaps back to ``config.probability``
        together with the sampler -- leaving it stale would let the
        no-change short-circuit strand the sketch at the wrong ``p``.
        """
        self.current_probability = self.config.probability
        self._epoch_start = None
        self._epoch_packets = 0
        self._batch_packets = 0
        self._batch_elapsed = 0.0
        self.adjustments = []

    def on_packet(self, timestamp: Optional[float]) -> Optional[float]:
        """Register one packet arrival; maybe return a new probability."""
        if timestamp is None:
            return None
        if self._epoch_start is None:
            self._epoch_start = timestamp
            self._epoch_packets = 1
            return None
        elapsed = timestamp - self._epoch_start
        if elapsed < self.config.adaptation_epoch_seconds:
            self._epoch_packets += 1
            return None
        # The boundary packet opens the next epoch (mirroring how the very
        # first packet opened the first one); the closing epoch's rate is
        # the packets that arrived in [start, boundary) over the elapsed
        # time, so every epoch counts its start packet exactly once.
        rate_mpps = self._epoch_packets / elapsed / 1e6
        self._epoch_start = timestamp
        self._epoch_packets = 1
        new_probability = self.config.probability_for_rate(rate_mpps)
        self.telemetry.count("nitro_epochs_total")
        self.telemetry.event(
            "nitro.epoch",
            rate_mpps=rate_mpps,
            probability=new_probability,
            timestamp=timestamp,
        )
        if new_probability != self.current_probability:
            self.current_probability = new_probability
            self.adjustments.append((timestamp, new_probability))
            return new_probability
        return None

    def on_batch(self, packet_count: int, duration_seconds: float) -> Optional[float]:
        """Batch-granularity adaptation with epoch discipline.

        Packets and wall-clock time accumulate across batches; the rate
        is evaluated (and one ``nitro.epoch`` event emitted) only once
        ``adaptation_epoch_seconds`` has elapsed, mirroring the 100 ms
        epochs of :meth:`on_packet`.  Sub-epoch batches therefore no
        longer produce one noisy rate estimate each.
        """
        if duration_seconds <= 0 or packet_count <= 0:
            return None
        self._batch_packets += packet_count
        self._batch_elapsed += duration_seconds
        if self._batch_elapsed < self.config.adaptation_epoch_seconds:
            return None
        rate_mpps = self._batch_packets / self._batch_elapsed / 1e6
        self._batch_packets = 0
        self._batch_elapsed = 0.0
        new_probability = self.config.probability_for_rate(rate_mpps)
        self.telemetry.count("nitro_epochs_total")
        self.telemetry.event(
            "nitro.epoch", rate_mpps=rate_mpps, probability=new_probability
        )
        if new_probability != self.current_probability:
            self.current_probability = new_probability
            self.adjustments.append((None, new_probability))
            return new_probability
        return None

    def getstate(self) -> dict:
        """Snapshot epoch/rate state (for checkpointing)."""
        return {
            "current_probability": self.current_probability,
            "epoch_start": self._epoch_start,
            "epoch_packets": self._epoch_packets,
            "batch_packets": self._batch_packets,
            "batch_elapsed": self._batch_elapsed,
            "adjustments": [list(item) for item in self.adjustments],
        }

    def setstate(self, state: dict) -> None:
        """Restore a snapshot from :meth:`getstate`."""
        self.current_probability = float(state["current_probability"])
        start = state["epoch_start"]
        self._epoch_start = None if start is None else float(start)
        self._epoch_packets = int(state["epoch_packets"])
        # Absent in pre-epoch-discipline checkpoints; default to a fresh
        # accumulator so old blobs keep restoring.
        self._batch_packets = int(state.get("batch_packets", 0))
        self._batch_elapsed = float(state.get("batch_elapsed", 0.0))
        self.adjustments = [tuple(item) for item in state["adjustments"]]


class AlwaysCorrectController:
    """Convergence detection (Algorithm 1 lines 10-15).

    While unconverged the sketch must be driven at ``p = 1``.  Every
    ``Q = config.convergence_check_period`` packets the controller
    evaluates ``median_i sum_y C[i,y]^2 > T``; once true, it records the
    convergence point and the data plane switches to sampling.
    """

    def __init__(self, config: NitroConfig, sketch: CanonicalSketch) -> None:
        self.config = config
        self.sketch = sketch
        self.threshold = config.convergence_threshold()
        self.telemetry = NULL_TELEMETRY
        self.converged = False
        self.converged_at_packet: Optional[int] = None
        self._packets = 0

    def reset(self) -> None:
        """Restart the warm-up (the sketch reference and threshold stay)."""
        self.converged = False
        self.converged_at_packet = None
        self._packets = 0

    def on_packet(self) -> bool:
        """Register one packet; return True iff convergence just triggered."""
        if self.converged:
            return False
        self._packets += 1
        if self._packets % self.config.convergence_check_period != 0:
            return False
        return self._evaluate()

    def on_batch(self, packet_count: int) -> bool:
        """Register a packet batch; the check runs once per crossed period."""
        if self.converged:
            return False
        before = self._packets
        self._packets += packet_count
        period = self.config.convergence_check_period
        if self._packets // period == before // period:
            return False
        return self._evaluate()

    def _evaluate(self) -> bool:
        self.telemetry.count("nitro_convergence_checks_total")
        l2_squared = self.sketch.l2_squared_estimate()
        if l2_squared > self.threshold:
            self.converged = True
            self.converged_at_packet = self._packets
            self.telemetry.count("nitro_convergence_total")
            self.telemetry.event(
                "nitro.convergence",
                packets=self._packets,
                threshold=self.threshold,
                l2_squared=l2_squared,
                probability=self.config.probability,
            )
            return True
        return False

    def getstate(self) -> dict:
        """Snapshot convergence progress (for checkpointing)."""
        return {
            "converged": self.converged,
            "converged_at_packet": self.converged_at_packet,
            "packets": self._packets,
        }

    def setstate(self, state: dict) -> None:
        """Restore a snapshot from :meth:`getstate`."""
        self.converged = bool(state["converged"])
        at = state["converged_at_packet"]
        self.converged_at_packet = None if at is None else int(at)
        self._packets = int(state["packets"])
