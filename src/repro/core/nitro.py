"""The NitroSketch framework (paper Section 4, Algorithm 1).

:class:`NitroSketch` wraps any :class:`repro.sketches.CanonicalSketch`
and replaces its every-row update discipline with geometrically sampled
counter-array updates:

* a single Geometric(p) skip counter walks the virtual row-major sequence
  of (packet, row) slots (Idea B, Figure 5);
* a sampled slot ``(j, r)`` performs ``C[r][h_r(x_j)] += p^-1 g_r(x_j)``
  (Idea A, Figure 4 -- the ``p^-1`` scaling keeps every counter an
  unbiased estimator);
* the top-keys structure is touched only on sampled packets (Figure 7b
  step 4), removing bottleneck ``P`` from the common path;
* the adaptive controllers of Idea C (AlwaysLineRate / AlwaysCorrect)
  retune ``p`` online;
* :meth:`update_batch` is the buffered, NumPy-vectorised path of Idea D.

The wrapped sketch keeps its own query rule (min-of-rows for Count-Min,
median for Count Sketch / K-ary), so estimates read exactly like the
vanilla sketch's -- Theorems 1/2/5 give the accuracy guarantees.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import NitroConfig, NitroMode
from repro.core.geometric import GeometricSampler, geometric_positions
from repro.core.modes import AlwaysCorrectController, AlwaysLineRateController
from repro.sketches.base import CanonicalSketch
from repro.sketches.topk import TopK
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.profile import NULL_PROFILER

#: Cycles the pre-processing stage spends on an *unsampled* packet: one
#: batch-pointer advance plus the slot-counter decrement (Figure 7b,
#: "only a small portion of packets need to go through" the update).
PREPROCESS_CYCLES_PER_PACKET = 4.0


class NitroSketch:
    """Counter-array-sampling accelerator for canonical sketches.

    Parameters
    ----------
    sketch:
        The canonical sketch to accelerate.  Its width should be sized
        for the sampling probability (Theorem 2: ``w = 8 eps^-2 p^-1``;
        see :meth:`from_error_bounds` for automatic sizing).
    config:
        A :class:`NitroConfig`; keyword arguments build one implicitly,
        e.g. ``NitroSketch(sketch, probability=0.01, top_k=100)``.

    Notes
    -----
    ``update`` must be called once per packet even in sampling mode --
    skipping is *internal* (a decrement of the slot counter), which is
    precisely why it is cheap.
    """

    def __init__(self, sketch: CanonicalSketch, config: Optional[NitroConfig] = None, **kwargs) -> None:
        if config is None:
            config = NitroConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a config object or keyword arguments, not both")
        self.sketch = sketch
        self.config = config
        self.sampler = GeometricSampler(config.probability, config.seed)
        self.topk: Optional[TopK] = TopK(config.top_k) if config.top_k else None
        # Slots (row positions) to skip before the next sampled slot,
        # relative to row 0 of the *next* packet processed.
        self._pending = self.sampler.next_gap() - 1
        self.packets_seen = 0
        #: Packets that triggered at least one counter update -- the
        #: fraction copied into the shared buffer in the separate-thread
        #: integration (Section 6), i.e. the pre-processing stage's output.
        self.packets_sampled = 0
        # Batch-path RNG (NumPy) -- independent stream from the scalar
        # sampler, same distribution.
        self._batch_rng = np.random.default_rng(config.seed ^ 0xB5B5B5B5)

        self.linerate: Optional[AlwaysLineRateController] = None
        self.correctness: Optional[AlwaysCorrectController] = None
        if config.mode is NitroMode.ALWAYS_LINE_RATE:
            self.linerate = AlwaysLineRateController(config)
        elif config.mode is NitroMode.ALWAYS_CORRECT:
            self.correctness = AlwaysCorrectController(config, sketch)
            self.sampler.set_probability(1.0)
        self._telemetry = NULL_TELEMETRY
        #: Per-stage latency profiler (see
        #: :class:`repro.telemetry.profile.StageProfiler`).  The default
        #: null profiler costs one method call per batch; attach a real
        #: one to decompose batch ingest into geometric_skip / row_hash
        #: / scatter / query stage histograms.
        self.profiler = NULL_PROFILER
        #: Optional callable invoked as ``hook(self)`` after every
        #: :meth:`update_batch`.  The verify harness installs one that
        #: raises on any :meth:`check_invariants` violation; ``None``
        #: (the default) costs a single attribute test per batch.
        self.invariant_hook = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_error_bounds(
        cls,
        sketch_cls,
        epsilon: float,
        delta: float,
        probability: float = 0.01,
        mode: NitroMode = NitroMode.FIXED,
        top_k: int = 100,
        seed: int = 0,
    ) -> "NitroSketch":
        """Build a correctly sized Nitro-wrapped sketch for a target error.

        ``sketch_cls`` is a canonical sketch class exposing
        ``(depth, width, seed)`` -- e.g. ``CountSketch`` or
        ``CountMinSketch``.  Width follows Theorem 2 (or Theorem 5 for
        AlwaysCorrect); depth is ``ceil(log2 1/delta)``.
        """
        config = NitroConfig(
            probability=probability,
            mode=mode,
            epsilon=epsilon,
            delta=delta,
            top_k=top_k,
            seed=seed,
        )
        from repro.sketches.countmin import CountMinSketch

        guarantee = "l1" if issubclass(sketch_cls, CountMinSketch) else "l2"
        width = config.recommended_width(guarantee)
        depth = config.recommended_depth()
        return cls(sketch_cls(depth, width, seed), config)

    # -- properties -------------------------------------------------------------

    @property
    def ops(self):
        return self.sketch.ops

    @ops.setter
    def ops(self, sink) -> None:
        self.sketch.ops = sink
        self.sampler.ops = sink
        if self.topk is not None:
            self.topk.ops = sink

    @property
    def telemetry(self):
        """The telemetry sink (default :data:`NULL_TELEMETRY`, free)."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, sink) -> None:
        """Attach a sink and fan it out to the sampler and controllers."""
        self._telemetry = sink
        self.sampler.telemetry = sink
        if self.linerate is not None:
            self.linerate.telemetry = sink
        if self.correctness is not None:
            self.correctness.telemetry = sink
        sink.gauge("nitro_sampling_probability", self.sampler.probability)

    def _set_probability(self, probability: float, reason: str) -> None:
        """Move ``p`` and record the transition (gauge + event + counter)."""
        previous = self.sampler.probability
        self.sampler.set_probability(probability)
        self._telemetry.count("nitro_probability_changes_total", reason=reason)
        self._telemetry.event(
            "nitro.p_change",
            reason=reason,
            old=previous,
            new=probability,
            packets_seen=self.packets_seen,
        )

    @property
    def probability(self) -> float:
        """The sampling probability currently in force."""
        return self.sampler.probability

    @property
    def converged(self) -> bool:
        """AlwaysCorrect convergence state (True for other modes)."""
        if self.correctness is None:
            return True
        return self.correctness.converged

    @property
    def depth(self) -> int:
        return self.sketch.depth

    # -- data plane ---------------------------------------------------------------

    def update(self, key: int, weight: float = 1.0, timestamp: Optional[float] = None) -> None:
        """Process one packet (Algorithm 1's Update).

        ``timestamp`` (seconds) feeds AlwaysLineRate's rate measurement;
        it is ignored by the other modes.
        """
        self.packets_seen += 1
        self.ops.packet()
        self.ops.fixed(PREPROCESS_CYCLES_PER_PACKET)
        self._telemetry.count("nitro_packets_total", path="scalar")
        self._mode_hooks_scalar(timestamp)

        probability = self.sampler.probability
        if probability >= 1.0:
            # Exact phase (AlwaysCorrect warm-up, or p pinned to 1).
            self.packets_sampled += 1
            self._telemetry.count("nitro_sampled_packets_total")
            for row in range(self.sketch.depth):
                self.sketch.row_update(row, key, weight)
            if self.topk is not None:
                self.topk.offer(key, self.sketch.query(key))
            return

        depth = self.sketch.depth
        inverse = weight / probability
        updated = False
        if self.config.sampling == "bernoulli":
            # Ablation path (Idea A without Idea B): one coin flip per row.
            rng = self.sampler._rng
            self.ops.prng(depth)
            for row in range(depth):
                if rng.next_float() < probability:
                    self.sketch.row_update(row, key, inverse)
                    updated = True
        else:
            while self._pending < depth:
                self.sketch.row_update(self._pending, key, inverse)
                updated = True
                self._pending += self.sampler.next_gap()
            self._pending -= depth
        if updated:
            self.packets_sampled += 1
            self._telemetry.count("nitro_sampled_packets_total")
            if self.topk is not None:
                self.topk.offer(key, self.sketch.query(key))

    def _mode_hooks_scalar(self, timestamp: Optional[float]) -> None:
        if self.linerate is not None:
            new_probability = self.linerate.on_packet(timestamp)
            if new_probability is not None:
                self._set_probability(new_probability, "linerate")
        elif self.correctness is not None and not self.correctness.converged:
            if self.correctness.on_packet():
                self._set_probability(self.config.probability, "converged")

    def update_many(self, keys: Iterable[int]) -> None:
        """Scalar-loop ingest of a key sequence."""
        for key in keys:
            self.update(key)

    def update_batch(
        self,
        keys: "np.ndarray",
        weights: Optional["np.ndarray"] = None,
        duration_seconds: Optional[float] = None,
    ) -> None:
        """Vectorised ingest of a packet batch (Idea D).

        Statistically equivalent to calling :meth:`update` per key (it
        uses an independent RNG stream, so results differ per-draw but
        not in distribution).  ``duration_seconds`` is the wall-clock
        span of the batch and drives AlwaysLineRate adaptation.

        Top-k offers still happen for every packet that received at least
        one sampled row update.
        """
        self._update_batch_impl(keys, weights, duration_seconds)
        if self.invariant_hook is not None:
            self.invariant_hook(self)

    def _update_batch_impl(
        self,
        keys: "np.ndarray",
        weights: Optional["np.ndarray"],
        duration_seconds: Optional[float],
    ) -> None:
        keys = np.asarray(keys)
        count = len(keys)
        if count == 0:
            return
        profiler = self.profiler
        profiler.tick()
        self.packets_seen += count
        self.ops.packet(count)
        self.ops.fixed(PREPROCESS_CYCLES_PER_PACKET * count)
        self._telemetry.count("nitro_packets_total", count, path="batch")

        # Mode hooks at batch granularity.
        if self.linerate is not None and duration_seconds is not None:
            new_probability = self.linerate.on_batch(count, duration_seconds)
            if new_probability is not None:
                self._set_probability(new_probability, "linerate")
        if self.correctness is not None and not self.correctness.converged:
            # Warm-up: exact vectorised update, then check convergence.
            # The batch is already billed as packets above, so the inner
            # update is told not to recount it.
            self.packets_sampled += count
            self._telemetry.count("nitro_sampled_packets_total", count)
            with profiler.stage("exact_update"):
                self.sketch.update_batch(keys, weights, count_packets=False)
            with profiler.stage("query"):
                self._offer_topk(keys, count)
            if self.correctness.on_batch(count):
                self._set_probability(self.config.probability, "converged")
            return

        probability = self.sampler.probability
        depth = self.sketch.depth
        if probability >= 1.0:
            self.packets_sampled += count
            self._telemetry.count("nitro_sampled_packets_total", count)
            with profiler.stage("exact_update"):
                self.sketch.update_batch(keys, weights, count_packets=False)
            with profiler.stage("query"):
                self._offer_topk(keys, count)
            return

        total_slots = count * depth
        # Honour the skip carried over from previous packets: the next
        # sampled slot sits at absolute position `_pending`, and subsequent
        # samples continue the geometric process from there.
        if self._pending >= total_slots:
            self._pending -= total_slots
            return
        with profiler.stage("geometric_skip"):
            first = self._pending
            tail, leftover = geometric_positions(
                probability, total_slots - first - 1, self._batch_rng
            )
            positions = np.concatenate(
                [np.array([first], dtype=np.int64), first + 1 + tail]
            )
            self._pending = leftover
            self.ops.prng(len(positions))

            packet_idx = positions // depth
            rows = positions % depth
            inverse = 1.0 / probability
            if weights is None:
                slot_weights = np.full(positions.shape, inverse, dtype=np.float64)
            else:
                slot_weights = (
                    np.asarray(weights, dtype=np.float64)[packet_idx] * inverse
                )
            sampled_keys = keys[packet_idx]

        self.sketch.note_batch_mass(float(np.sum(slot_weights)))
        # One fused kernel call hashes and scatters every sampled slot
        # at once (row-indexed hashing + flat-index scatter-add), instead
        # of the old per-row mask/`np.add.at` loop.  The profiler (when
        # this batch is sampled) splits it into row_hash and scatter.
        self.ops.hash(len(positions))
        self.sketch.kernel.slot_update(
            rows,
            sampled_keys,
            slot_weights,
            profiler=profiler if profiler.active else None,
        )
        self.ops.counter_update(len(positions))

        sampled_packets = int(np.unique(packet_idx).size)
        self.packets_sampled += sampled_packets
        self._telemetry.count("nitro_sampled_packets_total", sampled_packets)
        self._telemetry.count("nitro_geometric_draws_total", len(positions))
        if self.topk is not None:
            with profiler.stage("query"):
                unique_keys = np.unique(sampled_keys)
                # Scalar ingest probes the heap once per *sampled packet*.
                self.ops.table_lookup(max(sampled_packets - len(unique_keys), 0))
                estimates = self.sketch.query_batch(unique_keys)
                for key, estimate in zip(unique_keys.tolist(), estimates.tolist()):
                    self.topk.offer(int(key), float(estimate))

    def _offer_topk(self, keys: "np.ndarray", count: int) -> None:
        """Offer each distinct key of an exact-phase batch to the heap."""
        if self.topk is None:
            return
        unique_keys = np.unique(keys)
        self.ops.table_lookup(count - len(unique_keys))
        estimates = self.sketch.query_batch(unique_keys)
        for key, estimate in zip(unique_keys.tolist(), estimates.tolist()):
            self.topk.offer(int(key), float(estimate))

    # -- queries -----------------------------------------------------------------

    def query(self, key: int) -> float:
        """Point frequency estimate (the wrapped sketch's own rule)."""
        return self.sketch.query(key)

    def _fresh_estimates(self) -> List[Tuple[int, float]]:
        """Batch-requery every tracked key (one fused query_batch call)."""
        tracked = list(self.topk.keys()) if self.topk is not None else []
        if not tracked:
            return []
        estimates = self.sketch.query_batch(np.asarray(tracked))
        return [(key, float(est)) for key, est in zip(tracked, estimates.tolist())]

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Tracked flows with a fresh estimate above ``threshold``."""
        if self.topk is None:
            raise RuntimeError("top-k tracking disabled (config.top_k == 0)")
        hitters = [
            (key, est) for key, est in self._fresh_estimates() if est > threshold
        ]
        hitters.sort(key=lambda item: (-item[1], item[0]))
        return hitters

    def top_items(self) -> List[Tuple[int, float]]:
        """Tracked (key, fresh estimate) pairs -- UnivMon's per-level hook."""
        return self._fresh_estimates()

    def l2_estimate(self) -> float:
        """AMS L2 estimate from the wrapped sketch (signed sketches only)."""
        return math.sqrt(max(self.sketch.l2_squared_estimate(), 0.0))

    def merge(self, other: "NitroSketch") -> None:
        """Merge another NitroSketch built with the same config/seed.

        Sketch linearity makes distributed monitoring trivial: each
        vantage point runs its own NitroSketch and the control plane sums
        the counter grids (plus unions the top-k candidates).  Requires
        identical wrapped-sketch configuration so the hash functions
        agree.
        """
        self.sketch.merge(other.sketch)
        self.packets_seen += other.packets_seen
        self.packets_sampled += other.packets_sampled
        if self.topk is not None and other.topk is not None:
            # Re-offer *every* tracked key (ours and theirs) with its
            # post-merge estimate: our keys' stored estimates predate the
            # merge, and leaving them stale would let eviction order be
            # driven by pre-merge counts.
            tracked = sorted(set(self.topk.keys()) | set(other.topk.keys()))
            if tracked:
                estimates = self.sketch.query_batch(np.asarray(tracked))
                for key, estimate in zip(tracked, estimates.tolist()):
                    self.topk.offer(int(key), float(estimate))

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> List[str]:
        """Cross-component coherence checks; returns violation strings.

        Pull-based: nothing on the data plane calls this unless an
        :attr:`invariant_hook` is installed, so the disabled overhead is
        one attribute test per batch.  Checks (docs/VERIFICATION.md):

        * ``packets_sampled <= packets_seen`` and a non-negative skip
          cursor;
        * sampler/controller/config ``p`` coherence -- the sampler must
          agree with AlwaysLineRate's ``current_probability``, with
          AlwaysCorrect's phase (1.0 unconverged, ``config.probability``
          after), or with the fixed configured ``p``;
        * the wrapped sketch's own invariants (finite counters, K-ary
          mass conservation) and the top-k heap/dict consistency.
        """
        violations: List[str] = []
        if self.packets_sampled > self.packets_seen:
            violations.append(
                "nitro: packets_sampled %d exceeds packets_seen %d"
                % (self.packets_sampled, self.packets_seen)
            )
        if self._pending < 0:
            violations.append("nitro: negative pending slot skip %d" % self._pending)
        probability = self.sampler.probability
        if self.linerate is not None:
            if probability != self.linerate.current_probability:
                violations.append(
                    "nitro: sampler p=%g desynced from AlwaysLineRate "
                    "controller p=%g" % (probability, self.linerate.current_probability)
                )
        elif self.correctness is not None:
            expected = 1.0 if not self.correctness.converged else self.config.probability
            if probability != expected:
                violations.append(
                    "nitro: sampler p=%g but AlwaysCorrect (%s) implies p=%g"
                    % (
                        probability,
                        "converged" if self.correctness.converged else "warm-up",
                        expected,
                    )
                )
        elif probability != self.config.probability:
            violations.append(
                "nitro: fixed-mode sampler p=%g != config p=%g"
                % (probability, self.config.probability)
            )
        if hasattr(self.sketch, "check_invariants"):
            violations.extend(self.sketch.check_invariants())
        if self.topk is not None:
            violations.extend(self.topk.check_invariants())
        return violations

    # -- bookkeeping ----------------------------------------------------------------

    def memory_bytes(self) -> int:
        total = self.sketch.memory_bytes()
        if self.topk is not None:
            total += self.topk.memory_bytes()
        return total

    def reset(self) -> None:
        """Clear counters, top-k and mode state (keeps hashes and config).

        The contract is reset-equals-fresh: after ``reset`` the monitor
        behaves bit-identically to a newly built ``NitroSketch`` with the
        same config and seed -- PRNG cursors are reseeded and every
        controller (including AlwaysLineRate's ``current_probability``,
        epoch accumulators and adjustment history) returns to its
        constructed state.  The statements mirror ``__init__`` order so
        the same number of gap draws is consumed in every mode.
        """
        self.sketch.reset()
        if self.topk is not None:
            self.topk.reset()
        self.packets_seen = 0
        self.packets_sampled = 0
        self.sampler.reset(self.config.probability)
        self._pending = self.sampler.next_gap() - 1
        self._batch_rng = np.random.default_rng(self.config.seed ^ 0xB5B5B5B5)
        if self.linerate is not None:
            self.linerate.reset()
        if self.correctness is not None:
            self.correctness.reset()
            self._set_probability(1.0, "reset")
        else:
            self._set_probability(self.config.probability, "reset")
